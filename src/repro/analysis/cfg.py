"""repro.analysis.cfg — generator-aware control-flow graphs for engine code.

Lowers one Python function (typically a protocol-engine *generator*) to
a small CFG whose nodes are statements and whose edges model:

* normal sequencing; branch edges out of ``if``/``while``/``for`` heads
  are labeled ``"true"``/``"false"`` so analyses can prune correlated
  branches (e.g. ``if tx.log_acks:`` guarding the drain of those acks),
* ``yield`` suspension points — every yield may resume with an injected
  exception (``RdmaError``/``LinkRevokedError`` from a failed verb) or
  ``GeneratorExit`` (the process was killed at the suspension point),
* typed exception edges routed through ``except`` clauses using a small
  static hierarchy (:data:`EXC_BASES`) of the exceptions that actually
  flow through the engine,
* ``finally`` blocks, *duplicated per escape route*, so cleanup code
  sits on exactly the exceptional paths it runs on,
* ``return``/``break``/``continue`` routed through enclosing finallys.

Three synthetic terminals close every path: :attr:`CFG.exit` (normal
return), :attr:`CFG.raise_exit` (an exception escapes the function) and
:attr:`CFG.kill_exit` (``GeneratorExit`` escapes — the generator was
killed mid-protocol and recovery takes over). The edge *into* a
terminal or handler carries the escaping exception's name as its label.

Which exceptions a statement can raise is pluggable: the builder calls
``raises_for(stmt)`` for every statement node it creates, so the caller
(protolint) can classify yields by what they await — a crash-point
yield only dies, a verb ack can fail with ``RdmaError`` — and fold in
callee summaries for ``yield from self._method()`` calls.

The CFG is built from stdlib ``ast`` only and never imports the code
it analyzes.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "EXC_BASES",
    "YIELD_RAISES",
    "exception_matches",
    "stmt_yield_values",
    "dotted_name",
]

# Static exception hierarchy: exc name -> (exc, *bases) as matched by
# ``except`` clauses. Everything the engine code raises or injects.
EXC_BASES: Dict[str, Tuple[str, ...]] = {
    "TxnAbort": ("TxnAbort", "Exception", "BaseException"),
    "RdmaError": ("RdmaError", "Exception", "BaseException"),
    "RemoteNodeDownError": (
        "RemoteNodeDownError", "RdmaError", "Exception", "BaseException",
    ),
    "LinkRevokedError": (
        "LinkRevokedError", "RdmaError", "Exception", "BaseException",
    ),
    "GeneratorExit": ("GeneratorExit", "BaseException"),
    "Exception": ("Exception", "BaseException"),
    "AssertionError": ("AssertionError", "Exception", "BaseException"),
    "ValueError": ("ValueError", "Exception", "BaseException"),
    "KeyError": ("KeyError", "Exception", "BaseException"),
    "RuntimeError": ("RuntimeError", "Exception", "BaseException"),
}

# Default model for what resuming at a yield can throw at the generator.
YIELD_RAISES: Tuple[str, ...] = ("RdmaError", "LinkRevokedError", "GeneratorExit")


def exception_matches(handler_names: Optional[Sequence[str]], exc: str) -> bool:
    """Would ``except <handler_names>`` catch an *exc*? (None = bare.)"""
    if handler_names is None:
        return True
    bases = EXC_BASES.get(exc, (exc, "Exception", "BaseException"))
    return any(name in bases for name in handler_names)


def dotted_name(node: ast.AST) -> Optional[str]:
    """'a.b.c' for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _YieldFinder(ast.NodeVisitor):
    """Collect yield expressions of one statement, skipping nested defs."""

    def __init__(self) -> None:
        self.yields: List[ast.expr] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # a nested def's yields belong to the nested function

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yields.append(node)
        self.generic_visit(node)


def stmt_yield_values(stmt: ast.stmt) -> List[ast.expr]:
    """Yield/YieldFrom expression nodes directly inside one statement.

    Only the statement's own expressions are searched — nested function
    definitions (and lambdas) keep their yields to themselves, and
    compound statements report only their header (a ``for`` head is not
    a yield just because its body yields).
    """
    finder = _YieldFinder()
    if isinstance(stmt, (ast.If, ast.While)):
        finder.visit(stmt.test)
    elif isinstance(stmt, ast.For):
        finder.visit(stmt.iter)
    elif isinstance(stmt, ast.Try):
        return []
    elif isinstance(stmt, ast.With):
        for item in stmt.items:
            finder.visit(item.context_expr)
    else:
        finder.visit(stmt)
    return finder.yields


class CFGNode:
    """One CFG node: a statement, or a synthetic entry/terminal."""

    __slots__ = ("node_id", "kind", "stmt", "lineno", "is_yield", "desc", "succs")

    def __init__(
        self,
        node_id: int,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        lineno: int = 0,
        desc: str = "",
    ) -> None:
        self.node_id = node_id
        self.kind = kind  # "entry" | "exit" | "raise" | "kill" | "stmt"
        self.stmt = stmt
        self.lineno = lineno
        self.is_yield = bool(stmt is not None and stmt_yield_values(stmt))
        self.desc = desc
        # Ordered out-edges: (target, label). Label "" is plain flow,
        # "true"/"false" are branch edges, "return" enters exit, and an
        # exception name marks an exceptional edge.
        self.succs: List[Tuple["CFGNode", str]] = []

    def edge(self, target: "CFGNode", label: str = "") -> None:
        if (target, label) not in self.succs:
            self.succs.append((target, label))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CFGNode #{self.node_id} {self.kind} L{self.lineno} {self.desc!r}>"


class CFG:
    """The graph for one function: entry, statement nodes, terminals."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.name = func.name
        self.nodes: List[CFGNode] = []
        self.entry = self._make("entry", desc="<entry>")
        self.exit = self._make("exit", desc="<return>")
        self.raise_exit = self._make("raise", desc="<exception escapes>")
        self.kill_exit = self._make("kill", desc="<killed (GeneratorExit)>")

    def _make(
        self, kind: str, stmt: Optional[ast.stmt] = None, desc: str = ""
    ) -> CFGNode:
        node = CFGNode(
            len(self.nodes), kind, stmt, getattr(stmt, "lineno", 0), desc
        )
        self.nodes.append(node)
        return node

    def stmt_nodes(self) -> List[CFGNode]:
        return [node for node in self.nodes if node.kind == "stmt"]

    def render(self) -> str:
        """Human-readable edge list (tests and debugging)."""
        lines = []
        for node in self.nodes:
            for target, label in node.succs:
                tag = f" [{label}]" if label else ""
                lines.append(
                    f"#{node.node_id} {node.desc} -> #{target.node_id} "
                    f"{target.desc}{tag}"
                )
        return "\n".join(lines)


class _Frame:
    """One enclosing ``try`` seen from inside one of its zones.

    ``zone`` is "body" (handlers are live) or "cleanup" (a handler or
    else block: sibling handlers no longer match, only the finally
    runs). ``handlers`` pairs each clause's caught names (None = bare)
    with its entry node.
    """

    __slots__ = ("handlers", "finalbody", "zone")

    def __init__(
        self,
        handlers: Sequence[Tuple[Optional[Tuple[str, ...]], CFGNode]],
        finalbody: Optional[List[ast.stmt]],
        zone: str,
    ) -> None:
        self.handlers = list(handlers)
        self.finalbody = finalbody
        self.zone = zone


class _Loop:
    """One enclosing loop: its head and where ``break`` lands."""

    __slots__ = ("head", "break_ends", "frames_len")

    def __init__(self, head: CFGNode, frames_len: int) -> None:
        self.head = head
        self.break_ends: List[Tuple[CFGNode, str]] = []
        self.frames_len = frames_len


# An "open end": a node whose fallthrough edge (with this label) still
# needs a target.
_Ends = List[Tuple[CFGNode, str]]


class _Builder:
    def __init__(
        self,
        cfg: CFG,
        raises_for: Callable[[ast.stmt], Iterable[str]],
    ) -> None:
        self.cfg = cfg
        self.raises_for = raises_for
        # Declared names of the innermost handler being built (for
        # bare ``raise`` re-raises); None outside handlers.
        self._reraise: Optional[Tuple[str, ...]] = None

    # -- plumbing -------------------------------------------------------------

    def _stmt_node(self, stmt: ast.stmt) -> CFGNode:
        try:
            desc = ast.unparse(stmt).split("\n")[0]
        except Exception:  # pragma: no cover - unparse is total on valid ASTs
            desc = type(stmt).__name__
        if isinstance(stmt, ast.If):
            desc = f"if {ast.unparse(stmt.test)}"
        elif isinstance(stmt, ast.While):
            desc = f"while {ast.unparse(stmt.test)}"
        elif isinstance(stmt, ast.For):
            desc = f"for {ast.unparse(stmt.target)} in {ast.unparse(stmt.iter)}"
        if len(desc) > 72:
            desc = desc[:69] + "..."
        return self.cfg._make("stmt", stmt, desc)

    def _connect(self, ends: _Ends, target: CFGNode) -> None:
        for node, label in ends:
            node.edge(target, label)

    def _route_exception(
        self, sources: _Ends, exc: str, frames: List[_Frame]
    ) -> None:
        """Route *exc* raised at *sources* outward through frames.

        Runs matching handlers, duplicates finally bodies along the
        way, and falls off into raise_exit / kill_exit.
        """
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            outer = frames[:index]
            if frame.zone == "body":
                for names, entry in frame.handlers:
                    if exception_matches(names, exc):
                        for node, _ in sources:
                            node.edge(entry, exc)
                        return
            if frame.finalbody:
                entry, ends = self._block(frame.finalbody, outer, [])
                if entry is not None:
                    for node, _ in sources:
                        node.edge(entry, exc)
                    sources = [(node, exc) for node, _ in ends]
        target = self.cfg.kill_exit if exc == "GeneratorExit" else self.cfg.raise_exit
        for node, _ in sources:
            node.edge(target, exc)

    def _route_through_finallys(
        self, node: CFGNode, frames: List[_Frame], stop_at: int = 0
    ) -> _Ends:
        """Thread *node* through finallys of frames[stop_at:] (for
        return/break/continue); returns the surviving open ends."""
        sources: _Ends = [(node, "")]
        for index in range(len(frames) - 1, stop_at - 1, -1):
            frame = frames[index]
            if frame.finalbody:
                entry, ends = self._block(frame.finalbody, frames[:index], [])
                if entry is not None:
                    self._connect(sources, entry)
                    sources = ends
        return sources

    # -- statements -----------------------------------------------------------

    def _block(
        self, stmts: List[ast.stmt], frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[Optional[CFGNode], _Ends]:
        """Build a statement list; returns (entry, open ends)."""
        entry: Optional[CFGNode] = None
        ends: _Ends = []
        first = True
        for stmt in stmts:
            node, stmt_ends = self._statement(stmt, frames, loops)
            if first:
                entry = node
                first = False
            else:
                self._connect(ends, node)
            ends = stmt_ends
            if not ends:
                # The block can only continue exceptionally (raise /
                # return / break / continue ended every path).
                break
        return entry, ends

    def _statement(
        self, stmt: ast.stmt, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frames, loops)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frames, loops)
        if isinstance(stmt, ast.For):
            return self._for(stmt, frames, loops)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frames, loops)
        if isinstance(stmt, ast.With):
            return self._with(stmt, frames, loops)
        node = self._stmt_node(stmt)
        if isinstance(stmt, ast.Return):
            self._apply_raises(node, stmt, frames)
            ends = self._route_through_finallys(node, frames)
            for end_node, _ in ends:
                end_node.edge(self.cfg.exit, "return")
            return node, []
        if isinstance(stmt, ast.Raise):
            for exc in self._raise_excs(stmt):
                self._route_exception([(node, "")], exc, frames)
            return node, []
        if isinstance(stmt, ast.Break):
            if loops:
                loop = loops[-1]
                ends = self._route_through_finallys(node, frames, loop.frames_len)
                loop.break_ends.extend(ends)
            return node, []
        if isinstance(stmt, ast.Continue):
            if loops:
                loop = loops[-1]
                ends = self._route_through_finallys(node, frames, loop.frames_len)
                self._connect(ends, loop.head)
            return node, []
        # Simple statement (Expr / Assign / AugAssign / Assert / ...).
        self._apply_raises(node, stmt, frames)
        return node, [(node, "")]

    def _apply_raises(
        self, node: CFGNode, stmt: ast.stmt, frames: List[_Frame]
    ) -> None:
        for exc in self.raises_for(stmt):
            self._route_exception([(node, "")], exc, frames)

    def _raise_excs(self, stmt: ast.Raise) -> List[str]:
        exc = stmt.exc
        if exc is None:
            # Bare re-raise: whatever the enclosing handler declared.
            return list(self._reraise or ("Exception",))
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
        else:
            name = dotted_name(exc)
        if name is None:
            return ["Exception"]
        return [name.rsplit(".", 1)[-1]]

    # -- compound statements --------------------------------------------------

    def _if(
        self, stmt: ast.If, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        head = self._stmt_node(stmt)
        self._apply_raises(head, stmt, frames)
        body_entry, body_ends = self._block(stmt.body, frames, loops)
        if body_entry is not None:
            head.edge(body_entry, "true")
        ends = list(body_ends)
        if stmt.orelse:
            else_entry, else_ends = self._block(stmt.orelse, frames, loops)
            if else_entry is not None:
                head.edge(else_entry, "false")
            ends.extend(else_ends)
        else:
            ends.append((head, "false"))
        return head, ends

    def _loop_test_is_true(self, stmt: ast.While) -> bool:
        return isinstance(stmt.test, ast.Constant) and stmt.test.value is True

    def _while(
        self, stmt: ast.While, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        head = self._stmt_node(stmt)
        self._apply_raises(head, stmt, frames)
        loop = _Loop(head, len(frames))
        body_entry, body_ends = self._block(stmt.body, frames, loops + [loop])
        if body_entry is not None:
            head.edge(body_entry, "true")
        self._connect(body_ends, head)
        ends: _Ends = list(loop.break_ends)
        if not self._loop_test_is_true(stmt):
            ends.append((head, "false"))
        return head, ends

    def _for(
        self, stmt: ast.For, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        head = self._stmt_node(stmt)
        self._apply_raises(head, stmt, frames)
        loop = _Loop(head, len(frames))
        body_entry, body_ends = self._block(stmt.body, frames, loops + [loop])
        if body_entry is not None:
            head.edge(body_entry, "true")
        self._connect(body_ends, head)
        # "false" = iterator exhausted; for drain loops this edge is
        # the proof that every element was consumed.
        return head, list(loop.break_ends) + [(head, "false")]

    def _with(
        self, stmt: ast.With, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        head = self._stmt_node(stmt)
        self._apply_raises(head, stmt, frames)
        body_entry, body_ends = self._block(stmt.body, frames, loops)
        if body_entry is not None:
            head.edge(body_entry, "")
            return head, body_ends
        return head, [(head, "")]

    def _handler_names(
        self, handler: ast.ExceptHandler
    ) -> Optional[Tuple[str, ...]]:
        if handler.type is None:
            return None
        if isinstance(handler.type, ast.Tuple):
            names = []
            for element in handler.type.elts:
                name = dotted_name(element)
                names.append(name.rsplit(".", 1)[-1] if name else "Exception")
            return tuple(names)
        name = dotted_name(handler.type)
        return (name.rsplit(".", 1)[-1] if name else "Exception",)

    def _try(
        self, stmt: ast.Try, frames: List[_Frame], loops: List[_Loop]
    ) -> Tuple[CFGNode, _Ends]:
        finalbody = stmt.finalbody or None
        cleanup_frame = _Frame((), finalbody, "cleanup")

        # Build each handler block first so body statements can route
        # exception edges straight to the handler entries. A handler's
        # own exceptions skip sibling handlers but run the finally.
        handler_specs: List[Tuple[Optional[Tuple[str, ...]], CFGNode]] = []
        handler_ends: _Ends = []
        for handler in stmt.handlers:
            names = self._handler_names(handler)
            saved = self._reraise
            self._reraise = names if names is not None else ("Exception",)
            entry, ends = self._block(
                handler.body, frames + [cleanup_frame], loops
            )
            self._reraise = saved
            if entry is None:  # empty handler body (bare "except: pass"?)
                entry = self.cfg._make("stmt", handler, "pass")
                ends = [(entry, "")]
            handler_specs.append((names, entry))
            handler_ends.extend(ends)

        body_frame = _Frame(handler_specs, finalbody, "body")
        body_entry, body_ends = self._block(
            stmt.body, frames + [body_frame], loops
        )
        if body_entry is None:  # "try: pass" — synthesize a node
            body_entry = self.cfg._make("stmt", stmt, "pass")
            body_ends = [(body_entry, "")]

        if stmt.orelse:
            else_entry, else_ends = self._block(
                stmt.orelse, frames + [cleanup_frame], loops
            )
            if else_entry is not None:
                self._connect(body_ends, else_entry)
                body_ends = else_ends

        normal_ends = body_ends + handler_ends
        if finalbody:
            fin_entry, fin_ends = self._block(finalbody, frames, loops)
            if fin_entry is not None:
                self._connect(normal_ends, fin_entry)
                normal_ends = fin_ends
        return body_entry, normal_ends


def default_raises_for(stmt: ast.stmt) -> Iterable[str]:
    """Baseline model: every yield can fail or be killed; calls can't."""
    if stmt_yield_values(stmt):
        return YIELD_RAISES
    return ()


def build_cfg(
    func: ast.FunctionDef,
    raises_for: Optional[Callable[[ast.stmt], Iterable[str]]] = None,
) -> CFG:
    """Build the CFG of one function definition."""
    cfg = CFG(func)
    builder = _Builder(cfg, raises_for if raises_for is not None else default_raises_for)
    body = list(func.body)
    # Skip a leading docstring: it is not control flow.
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    entry, ends = builder._block(body, [], [])
    if entry is not None:
        cfg.entry.edge(entry, "")
    else:
        cfg.entry.edge(cfg.exit, "return")
    for node, label in ends:
        node.edge(cfg.exit, label or "return")
    return cfg
