"""repro.analysis — static and dynamic correctness tooling.

Two independent guardrails for the simulator (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.simlint` — an AST-based determinism linter
  (rules SIM001-SIM008) keeping ``src/repro`` simulation-pure: no
  wall-clock, no module-level ``random`` calls, no unordered set
  iteration, explicit ``Optional`` hints, instrumentation only through
  the ``Obs`` facade. Run with ``python -m repro.analysis lint``.
* :mod:`repro.analysis.sanitizer` — an opt-in online sanitizer that
  shadows the lock table at the verb layer and asserts PILL's lock/log
  discipline (§3.1-§3.2 of the paper) on every simulated verb. The
  mutation harness in :mod:`repro.analysis.mutants` proves it catches
  deliberately broken engines: ``python -m repro.analysis mutants``.

This ``__init__`` intentionally imports nothing from the rest of
``repro``: core modules (``repro.memory.node``, ``repro.rdma.qp``)
import :data:`NOOP_SANITIZER` from here, while the heavy submodules
import core modules — keeping the no-op default here breaks the cycle.
"""

from __future__ import annotations

__all__ = ["NOOP_SANITIZER", "NoopSanitizer"]


class NoopSanitizer:
    """Disabled-sanitizer twin of ``repro.obs.NullObs``.

    Instrumented hot paths (``QueuePair.post``, ``MemoryNode.apply``)
    call these hooks unconditionally; the slotted no-op singleton keeps
    the disabled path at one attribute lookup plus one empty call, and
    a disabled run is bit-identical to an uninstrumented one (the
    sanitizer never schedules simulation events).
    """

    __slots__ = ()

    enabled = False

    def on_post(self, compute_id, node_id, kind, args, now) -> None:
        """Compute-side hook: a verb was posted on a queue pair."""

    def before_verb(self, node, src, kind, args) -> None:
        """Memory-side hook: a verb is about to execute at *node*."""

    def after_verb(self, node, src, kind, args, result) -> None:
        """Memory-side hook: a verb executed at *node* with *result*."""


NOOP_SANITIZER = NoopSanitizer()
