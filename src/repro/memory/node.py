"""The memory server: passive storage accessed through one-sided verbs.

A memory node holds object slots (lock word, version, payload) for each
table partition it hosts, plus one bounded log region per registered
coordinator (§3.1.4: all of a coordinator's undo logs live in the same
f+1 memory servers). It applies verbs atomically at message arrival and
runs **no transactional logic** — the only CPU it has is a wimpy core
for the control plane (connection setup and active-link termination,
§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import NOOP_SANITIZER

__all__ = [
    "ObjectSlot",
    "Table",
    "LogRecord",
    "LogRegion",
    "MemoryNode",
    "OBJECT_HEADER_BYTES",
]

# Lock word (8B) + version (8B) = per-object metadata read alongside values.
OBJECT_HEADER_BYTES = 16

# Fixed per-record log overhead (ids, lengths) plus per-entry metadata.
LOG_RECORD_HEADER_BYTES = 40
LOG_ENTRY_HEADER_BYTES = 32

# Each coordinator is allocated 32 KiB of log space per log server (§3.2.2).
LOG_REGION_CAPACITY_BYTES = 32 * 1024


class _TicketQueue:
    """Server-side state of one LOTUS ticket-lock word.

    ``entries`` maps ticket number → waiting coordinator id for every
    ticket not yet served or cancelled; the head (``serving``) is the
    current lock holder. The word stored in the lock column is derived
    from this state (see :func:`repro.protocol.locks.encode_ticket_word`);
    a drained queue is dropped and the word reverts to 0.
    """

    __slots__ = ("serving", "next_ticket", "entries")

    def __init__(self) -> None:
        self.serving = 0
        self.next_ticket = 0
        self.entries: Dict[int, int] = {}


class Table:
    """Columnar slot storage for one table partition.

    Slots are stored as parallel arrays keyed by the catalog's integer
    slot ids — one Python list per field (lock word, version, payload,
    valid bit) — instead of one heap object per slot. The verb handlers
    index the columns directly, which both halves per-slot memory and
    keeps the hot verbs to two list indexings instead of an attribute
    walk through a per-object ``__dict__``/slot descriptor.

    Indexing or iterating a table yields :class:`ObjectSlot` views for
    tests and cold paths that still want object-style access.
    """

    __slots__ = ("table_id", "value_size", "locks", "versions", "values", "present")

    def __init__(self, table_id: int, slots: int, value_size: int) -> None:
        self.table_id = table_id
        self.value_size = value_size
        self.locks: List[int] = [0] * slots
        self.versions: List[int] = [0] * slots
        self.values: List[Any] = [None] * slots
        self.present: List[bool] = [False] * slots

    def __len__(self) -> int:
        return len(self.locks)

    def __getitem__(self, slot: int) -> "ObjectSlot":
        return ObjectSlot(self, slot)

    def __iter__(self):
        for slot in range(len(self.locks)):
            yield ObjectSlot(self, slot)


class ObjectSlot:
    """Object-style view over one slot of a columnar :class:`Table`.

    The storage of record fields lives in the table's parallel arrays;
    this proxy keeps the historical per-object API (``slot.lock = 1``,
    ``slot.snapshot()``) working for tests, the chaos oracle, and the
    recovery restore path.
    """

    __slots__ = ("table", "index")

    def __init__(self, table: Table, index: int) -> None:
        self.table = table
        self.index = index

    @property
    def lock(self) -> int:
        return self.table.locks[self.index]

    @lock.setter
    def lock(self, word: int) -> None:
        self.table.locks[self.index] = word

    @property
    def version(self) -> int:
        return self.table.versions[self.index]

    @version.setter
    def version(self, version: int) -> None:
        self.table.versions[self.index] = version

    @property
    def value(self) -> Any:
        return self.table.values[self.index]

    @value.setter
    def value(self, value: Any) -> None:
        self.table.values[self.index] = value

    @property
    def present(self) -> bool:
        return self.table.present[self.index]

    @present.setter
    def present(self, present: bool) -> None:
        self.table.present[self.index] = present

    @property
    def value_size(self) -> int:
        return self.table.value_size

    def header(self) -> Tuple[int, int, bool]:
        """The 16-byte header: (lock word, version, present)."""
        table, index = self.table, self.index
        return (table.locks[index], table.versions[index], table.present[index])

    def snapshot(self) -> Tuple[int, int, bool, Any]:
        """Full object image: (lock, version, present, value)."""
        table, index = self.table, self.index
        return (
            table.locks[index],
            table.versions[index],
            table.present[index],
            table.values[index],
        )

    @property
    def slot_bytes(self) -> int:
        """Wire size of the slot (header + value)."""
        return OBJECT_HEADER_BYTES + self.table.value_size


@dataclass
class LogRecord:
    """A coalesced undo-log record for one transaction.

    ``entries`` is a sequence of tuples
    ``(table_id, slot, key, old_version, new_version, old_value,
    new_value, old_present, new_present)`` covering the full write-set.
    """

    coord_id: int
    txn_id: int
    entries: Sequence[Tuple]
    valid: bool = True
    record_id: int = -1
    # Bytes charged when the record entered a region (set on append).
    charged_bytes: int = 0

    def size_bytes(self, value_size_of: Optional[Dict[int, int]] = None) -> int:
        size = LOG_RECORD_HEADER_BYTES
        for entry in self.entries:
            table_id = entry[0]
            value_size = 8
            if value_size_of is not None:
                value_size = value_size_of.get(table_id, 8)
            size += LOG_ENTRY_HEADER_BYTES + 2 * value_size
        return size


@dataclass
class LogRegion:
    """A coordinator's bounded, exclusively-owned log area.

    The owner appends with plain RDMA writes (no CAS needed — the
    region is private), invalidates individual records on abort, and
    the recovery coordinator truncates the whole region by flipping the
    header's valid bit (§3.2.3).
    """

    coord_id: int
    capacity_bytes: int = LOG_REGION_CAPACITY_BYTES
    header_valid: bool = True
    used_bytes: int = 0
    records: List[LogRecord] = field(default_factory=list)
    _next_record_id: int = 0
    _by_id: Dict[int, LogRecord] = field(default_factory=dict)

    def append(self, record: LogRecord, size_bytes: int) -> int:
        """Append a record, wrapping (ring-buffer style) when full."""
        while self.used_bytes + size_bytes > self.capacity_bytes and self.records:
            evicted = self.records.pop(0)
            self._by_id.pop(evicted.record_id, None)
            self.used_bytes -= evicted.charged_bytes
        record.charged_bytes = size_bytes
        record.record_id = self._next_record_id
        self._next_record_id += 1
        self.records.append(record)
        self._by_id[record.record_id] = record
        self.used_bytes += size_bytes
        return record.record_id

    def invalidate(self, record_id: int) -> bool:
        record = self._by_id.get(record_id)
        if record is None:
            return False
        record.valid = False
        return True

    def valid_records(self) -> List[LogRecord]:
        """Records still valid (empty once truncated)."""
        if not self.header_valid:
            return []
        return [record for record in self.records if record.valid]

    def truncate(self) -> None:
        """Invalidate the whole region (recovery-side truncation)."""
        self.header_valid = False
        self.records.clear()
        self._by_id.clear()
        self.used_bytes = 0

    def reset(self) -> None:
        """Re-arm the region for a fresh coordinator id."""
        self.header_valid = True
        self.records.clear()
        self._by_id.clear()
        self.used_bytes = 0


class MemoryNode:
    """A passive memory server.

    Verbs arrive through queue pairs and are executed atomically by
    :meth:`apply`. ``ctrl_*`` kinds model the wimpy-core control plane
    (RPC-based, used only off the data path, as the paper allows).
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        # PILL sanitizer hook (repro.analysis); the no-op singleton
        # keeps the disabled path at one lookup + one empty call.
        self.sanitizer = NOOP_SANITIZER
        self.tables: Dict[int, Table] = {}
        self.value_sizes: Dict[int, int] = {}
        self.log_regions: Dict[int, LogRegion] = {}
        self._revoked: Set[int] = set()
        self.verb_counts: Dict[str, int] = {}
        # LOTUS lock-server state: ticket queues per (table, slot) and
        # the Cor4-pushed failed-ids bitset (wired by the cluster
        # builder) consulted to skip dead waiters on queue advance.
        self._ticket_queues: Dict[Tuple[int, int], _TicketQueue] = {}
        self.failed_ids: Optional[Any] = None
        # vote1pc per-slot shadows (undo image + write-set manifest),
        # cleared by the same writes that free the lock word.
        self._vote_shadows: Dict[Tuple[int, int], Tuple] = {}
        self._dispatch = {
            "read_object": self._op_read_object,
            "read_header": self._op_read_header,
            "read_headers": self._op_read_headers,
            "cas_lock": self._op_cas_lock,
            "write_lock": self._op_write_lock,
            "write_object": self._op_write_object,
            "faa_ticket": self._op_faa_ticket,
            "cancel_ticket": self._op_cancel_ticket,
            "vote_write": self._op_vote_write,
            "read_vote": self._op_read_vote,
            "write_value": self._op_write_value,
            "write_log": self._op_write_log,
            "invalidate_log": self._op_invalidate_log,
            "read_log_region": self._op_read_log_region,
            "truncate_log_region": self._op_truncate_log_region,
            "scan_chunk": self._op_scan_chunk,
            "ctrl_revoke": self._op_ctrl_revoke,
            "ctrl_unrevoke": self._op_ctrl_unrevoke,
            "ctrl_register_log_region": self._op_ctrl_register_log_region,
        }

    # -- provisioning (control path, done at cluster build / setup) -------

    def create_table(self, table_id: int, slots: int, value_size: int) -> None:
        """Allocate the columnar slot arrays for one table."""
        if table_id in self.tables:
            raise ValueError(f"table {table_id} already exists on node {self.node_id}")
        self.tables[table_id] = Table(table_id, slots, value_size)
        self.value_sizes[table_id] = value_size

    def load_slot(self, table_id: int, slot: int, value: Any, version: int = 1) -> None:
        """Bulk-load an object (bypasses the network; setup only)."""
        table = self.tables[table_id]
        table.values[slot] = value
        table.versions[slot] = version
        table.present[slot] = True

    def slot(self, table_id: int, slot: int) -> ObjectSlot:
        """Direct slot access (tests/introspection only)."""
        return self.tables[table_id][slot]

    def crash(self) -> None:
        """Crash-stop this memory server."""
        self.alive = False

    def restart(self) -> None:
        """Restart with memory intact (battery-backed / NVM scenario).

        Object slots and log regions survive (NVM), but the ticket
        queues and vote shadows are volatile lock-server state and die
        with the process. Keeping a stale queue across a restart would
        let the next ``faa_ticket`` re-grant the slot to a waiter whose
        transaction failed (and resolved) while this node was down —
        a live-owner lock leak. The re-replication path that calls this
        zeroes the matching lock words, so dropping the queues keeps
        word and queue state consistent.
        """
        self.alive = True
        self._ticket_queues.clear()
        self._vote_shadows.clear()

    # -- link management ----------------------------------------------------

    def is_revoked(self, compute_id: int) -> bool:
        """True if the compute id lost its RDMA access rights."""
        return compute_id in self._revoked

    # -- verb execution ------------------------------------------------------

    def apply(self, src_compute_id: int, kind: str, args: Tuple) -> Tuple[Any, int]:
        """Execute one verb atomically; returns (result, response bytes)."""
        handler = self._dispatch.get(kind)
        if handler is None:
            raise ValueError(f"unknown verb kind {kind!r}")
        self.verb_counts[kind] = self.verb_counts.get(kind, 0) + 1
        sanitizer = self.sanitizer
        if sanitizer is NOOP_SANITIZER:
            # Fast path: skip even the empty hook calls. The sanitizer
            # is wired before any traffic, so the check is stable.
            return handler(src_compute_id, args)
        sanitizer.before_verb(self, src_compute_id, kind, args)
        result = handler(src_compute_id, args)
        sanitizer.after_verb(self, src_compute_id, kind, args, result[0])
        return result

    # Data-path verbs ---------------------------------------------------------

    def _op_read_object(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot = args
        table = self.tables[table_id]
        snapshot = (
            table.locks[slot],
            table.versions[slot],
            table.present[slot],
            table.values[slot],
        )
        return snapshot, OBJECT_HEADER_BYTES + table.value_size

    def _op_read_header(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot = args
        table = self.tables[table_id]
        return (table.locks[slot], table.versions[slot], table.present[slot]), OBJECT_HEADER_BYTES

    def _op_read_headers(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """Doorbell-batched header read for a list of (table, slot)."""
        addresses = args[0]
        tables = self.tables
        headers = []
        for table_id, slot in addresses:
            table = tables[table_id]
            headers.append((table.locks[slot], table.versions[slot], table.present[slot]))
        return headers, OBJECT_HEADER_BYTES * len(headers)

    def _op_cas_lock(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot, expected, desired = args
        locks = self.tables[table_id].locks
        old = locks[slot]
        if old == expected:
            if desired == 0 and (self._ticket_queues or self._vote_shadows):
                # A conditional release doubles as a LOTUS queue
                # advance (dead-holder skip) and clears any vote1pc
                # shadow; both guards are falsy for CAS-word protocols,
                # keeping their hot path untouched.
                if self._release_side_effects(table_id, slot):
                    return old, 8
            locks[slot] = desired
        return old, 8

    def _op_write_lock(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot, word = args
        if word == 0 and (self._ticket_queues or self._vote_shadows):
            if self._release_side_effects(table_id, slot):
                return None, 8
        self.tables[table_id].locks[slot] = word
        return None, 8

    def _release_side_effects(self, table_id: int, slot: int) -> bool:
        """Shared lock-release semantics for LOTUS / vote1pc words.

        Clears the slot's vote shadow and, when a ticket queue exists,
        advances it in place of clearing the word. Returns True when
        the advance already updated the lock word (the caller must not
        overwrite it).
        """
        if self._vote_shadows:
            self._vote_shadows.pop((table_id, slot), None)
        queue = self._ticket_queues.get((table_id, slot))
        if queue is not None:
            self._ticket_advance(table_id, slot, queue)
            return True
        return False

    def _op_write_object(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """In-place update of value + version (+ presence)."""
        table_id, slot, version, value, present = args
        table = self.tables[table_id]
        table.versions[slot] = version
        table.values[slot] = value
        table.present[slot] = present
        return None, 8

    def _op_write_value(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot, value = args
        self.tables[table_id].values[slot] = value
        return None, 8

    # LOTUS ticket-queue verbs ---------------------------------------------------

    def _ticket_word(self, table: Table, slot: int, queue: _TicketQueue) -> int:
        from repro.protocol.locks import encode_ticket_word

        word = encode_ticket_word(
            queue.entries[queue.serving],
            queue.serving & 0xFFFF,
            queue.next_ticket & 0xFFFF,
        )
        table.locks[slot] = word
        return word

    def _ticket_advance(
        self, table_id: int, slot: int, queue: _TicketQueue
    ) -> None:
        """Grant the lock to the next *live, uncancelled* ticket.

        Dead waiters are skipped via the Cor4-pushed failed-ids bitset
        — the queue-aware half of PILL recovery: a coordinator that
        died while queued must never be granted the lock, or the slot
        would deadlock until someone steals it. A drained queue is
        dropped and the word reverts to 0 (the universal free word).
        """
        queue.entries.pop(queue.serving, None)
        queue.serving += 1
        failed = self.failed_ids
        while queue.serving < queue.next_ticket:
            coord = queue.entries.get(queue.serving)
            if coord is None:
                # Cancelled ticket: nothing to grant.
                queue.serving += 1
                continue
            if failed is not None and coord in failed:
                # Dead waiter: skip its ticket.
                queue.entries.pop(queue.serving)
                queue.serving += 1
                continue
            break
        table = self.tables[table_id]
        if queue.serving >= queue.next_ticket:
            del self._ticket_queues[(table_id, slot)]
            table.locks[slot] = 0
        else:
            self._ticket_word(table, slot, queue)

    def _op_faa_ticket(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """FAA enqueue: take a ticket, maybe get granted immediately."""
        table_id, slot, coord_id = args
        table = self.tables[table_id]
        key = (table_id, slot)
        queue = self._ticket_queues.get(key)
        if queue is None:
            word = table.locks[slot]
            if word != 0:
                # Foreign (CAS-format) lock word: refuse the enqueue.
                return (-1, word), 16
            queue = _TicketQueue()
            self._ticket_queues[key] = queue
        ticket = queue.next_ticket
        queue.next_ticket += 1
        queue.entries[ticket] = coord_id
        word = self._ticket_word(table, slot, queue)
        return (ticket, word), 16

    def _op_cancel_ticket(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """Withdraw a ticket (bounded-wait abort path)."""
        table_id, slot, ticket = args
        queue = self._ticket_queues.get((table_id, slot))
        if queue is None:
            return False, 8
        if ticket == queue.serving:
            # The canceller holds the lock: cancel is a release.
            self._ticket_advance(table_id, slot, queue)
        else:
            queue.entries.pop(ticket, None)
        return True, 8

    # vote1pc verbs --------------------------------------------------------------

    def _op_vote_write(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """Apply the new image and store the per-slot vote shadow."""
        table_id, slot, version, value, present, shadow = args
        table = self.tables[table_id]
        table.versions[slot] = version
        table.values[slot] = value
        table.present[slot] = present
        self._vote_shadows[(table_id, slot)] = shadow
        return None, 8

    def _op_read_vote(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        table_id, slot = args
        shadow = self._vote_shadows.get((table_id, slot))
        if shadow is None:
            return None, 8
        value_size = self.value_sizes.get(table_id, 8)
        size = OBJECT_HEADER_BYTES + value_size + 16 * len(shadow[5])
        return shadow, size

    # Log verbs ----------------------------------------------------------------

    def _op_write_log(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (record,) = args
        region = self.log_regions.get(record.coord_id)
        if region is None:
            region = LogRegion(coord_id=record.coord_id)
            self.log_regions[record.coord_id] = region
        size = record.size_bytes(self.value_sizes)
        record_id = region.append(record, size)
        return record_id, 8

    def _op_invalidate_log(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        coord_id, record_id = args
        region = self.log_regions.get(coord_id)
        found = region.invalidate(record_id) if region is not None else False
        return found, 8

    def _op_read_log_region(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (coord_id,) = args
        region = self.log_regions.get(coord_id)
        if region is None:
            return [], 8
        records = region.valid_records()
        return list(records), max(region.used_bytes, 8)

    def _op_truncate_log_region(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (coord_id,) = args
        region = self.log_regions.get(coord_id)
        if region is not None:
            region.truncate()
        return None, 8

    # Scan verb (used only by the Baseline's blocking recovery) ----------------

    def _op_scan_chunk(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        """Raw read of *count* slots starting at (table, start).

        One-sided reads cannot filter server-side, so the response is
        charged for the full chunk even though the caller only wants
        the lock words — this is what makes FORD-style stray-lock
        scans take seconds (§3.1.1).
        """
        table_id, start, count = args
        table = self.tables[table_id]
        end = min(start + count, len(table))
        locks = table.locks
        locked = [
            (index, locks[index])
            for index in range(start, end)
            if locks[index] != 0
        ]
        value_size = self.value_sizes.get(table_id, 8)
        chunk_bytes = (end - start) * (OBJECT_HEADER_BYTES + value_size)
        return (locked, end), chunk_bytes

    # Control-plane RPCs (wimpy core) -------------------------------------------

    def _op_ctrl_revoke(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (target_compute_id,) = args
        self._revoked.add(target_compute_id)
        return True, 8

    def _op_ctrl_unrevoke(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (target_compute_id,) = args
        self._revoked.discard(target_compute_id)
        return True, 8

    def _op_ctrl_register_log_region(self, _src: int, args: Tuple) -> Tuple[Any, int]:
        (coord_id,) = args
        region = self.log_regions.get(coord_id)
        if region is None:
            self.log_regions[coord_id] = LogRegion(coord_id=coord_id)
        else:
            region.reset()
        return True, 8

    # Introspection (test/bench support; not part of the data path) -------------

    def locked_slots(self, table_id: int) -> List[int]:
        """Indices of currently locked slots in a table."""
        return [
            index
            for index, lock in enumerate(self.tables[table_id].locks)
            if lock != 0
        ]

    def total_data_bytes(self) -> int:
        """Bytes of object data hosted by this node."""
        return sum(
            len(table) * (OBJECT_HEADER_BYTES + self.value_sizes[table_id])
            for table_id, table in self.tables.items()
        )
