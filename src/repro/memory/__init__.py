"""Memory-node substrate: passive object slots and per-coordinator logs."""

from repro.memory.node import LogRecord, LogRegion, MemoryNode, ObjectSlot, Table

__all__ = ["LogRecord", "LogRegion", "MemoryNode", "ObjectSlot", "Table"]
