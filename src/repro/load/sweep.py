"""Load sweeps: latency-vs-offered-load curves with CI gating.

A sweep first estimates the cluster's closed-loop capacity (a short
pandora steady-state run), builds an offered-load grid as multiples of
that capacity, and then runs one open-loop point per (protocol,
offered) pair — the *same* absolute grid for every protocol, so the
curves are directly comparable and the saturation knee (the first point
where achieved throughput falls visibly short of offered) shows up as a
divergence between the x=y line and each protocol's achieved curve.

``sweep_payload`` serialises a sweep into the committed
``BENCH_LOAD.json`` snapshot and ``compare_to_baseline`` gates a fresh
run against it, mirroring the kernel-perf gate: achieved throughput has
a tolerance floor, CO-corrected p99 a tolerance ceiling, and the commit
count must reproduce *exactly* — everything here is virtual time under
a fixed seed, so a commit-count drift means simulated behaviour
changed, which needs a deliberate re-baseline, not a shrug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.harness import default_config, run_steady_state
from repro.cluster.builder import Cluster
from repro.load.arrivals import ArrivalProcess, PoissonArrivals
from repro.load.engine import LoadResult, OpenLoopEngine
from repro.load.population import UserPopulation
from repro.obs.metrics import render_rows

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_MULTIPLIERS",
    "LoadCurve",
    "estimate_capacity",
    "default_offered_grid",
    "run_load_point",
    "run_sweep",
    "sweep_payload",
    "compare_to_baseline",
    "format_curves",
]

#: Snapshot format marker (bump on incompatible payload changes).
SNAPSHOT_SCHEMA = "load/1"

#: Same rationale as the kernel-perf gate: absorbs noise-free-but-
#: intentional drift discussions; real regressions move numbers more.
DEFAULT_TOLERANCE = 0.25

DEFAULT_PROTOCOLS = ("pandora", "ford", "tradlog")

#: Offered-load grid as multiples of estimated closed-loop capacity:
#: three sub-saturation points, the capacity point, and one past the
#: knee so the curve visibly bends.
DEFAULT_MULTIPLIERS = (0.25, 0.5, 0.75, 1.0, 1.4)


@dataclass
class LoadCurve:
    """One protocol's latency-vs-offered-load curve."""

    protocol: str
    workload: str
    arrivals: str
    points: List[LoadResult] = field(default_factory=list)

    @property
    def knee_offered_tps(self) -> Optional[float]:
        """First offered rate where achieved < 90% of offered."""
        for point in self.points:
            if point.achieved_tps < 0.9 * point.offered:
                return point.offered
        return None


def estimate_capacity(
    workload_factory: Callable[[], object],
    protocol: str = "pandora",
    duration: float = 10e-3,
    **config_overrides,
) -> float:
    """Closed-loop committed throughput: the sweep's capacity anchor.

    Virtual-time determinism makes this exactly reproducible per seed,
    so grids derived from it are stable across machines.
    """
    result = run_steady_state(
        workload_factory,
        protocol=protocol,
        duration=duration,
        warmup=2e-3,
        **config_overrides,
    )
    return result.throughput


def default_offered_grid(
    capacity: float, multipliers: Sequence[float] = DEFAULT_MULTIPLIERS
) -> List[float]:
    """Offered rates walked by the sweep (rounded for stable labels)."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return [round(capacity * m, 1) for m in multipliers]


def run_load_point(
    protocol: str,
    workload_factory: Callable[[], object],
    offered: float,
    duration: float = 20e-3,
    warmup: float = 2e-3,
    arrivals: Optional[ArrivalProcess] = None,
    users: int = 256,
    zipf_theta: float = 0.99,
    session_length: float = 20.0,
    monitor_factory: Optional[Callable[[object], Sequence]] = None,
    slo=None,
    slo_factory: Optional[Callable[[], object]] = None,
    check_oracle: bool = False,
    crash_compute: Sequence = (),
    config=None,
    **config_overrides,
) -> LoadResult:
    """One open-loop point: build a fresh cluster and drive it.

    ``monitor_factory`` (workload -> monitors) is called with the
    point's actual workload instance so invariant monitors observe the
    same object the cluster loads data into; ``slo_factory`` likewise
    builds a fresh :class:`~repro.load.slo.SloMonitor` per point
    (rolling windows are per-run state).
    """
    cfg = config or default_config(protocol=protocol, **config_overrides)
    workload = workload_factory()
    monitors = list(monitor_factory(workload)) if monitor_factory else []
    if slo_factory is not None:
        slo = slo_factory()
    cluster = Cluster(cfg, workload)
    population = UserPopulation(
        workload,
        users=users,
        zipf_theta=zipf_theta,
        session_length=session_length,
        seed=cfg.seed,
    )
    engine = OpenLoopEngine(
        cluster,
        population,
        offered,
        duration,
        arrivals=arrivals if arrivals is not None else PoissonArrivals(),
        warmup=warmup,
        seed=cfg.seed + 7,
        monitors=monitors,
        slo=slo,
        check_oracle=check_oracle,
        crash_compute=crash_compute,
    )
    return engine.run()


def run_sweep(
    workload_factory: Callable[[], object],
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    grid: Optional[Sequence[float]] = None,
    duration: float = 20e-3,
    arrivals: Optional[ArrivalProcess] = None,
    users: int = 256,
    zipf_theta: float = 0.99,
    monitor_factory: Optional[Callable[[object], Sequence]] = None,
    check_oracle: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    **point_kwargs,
) -> List[LoadCurve]:
    """Walk the offered-load grid for each protocol.

    ``monitor_factory`` (workload -> monitors) builds fresh workload
    invariants per point — monitors hold per-run state, so sharing one
    across points would cross-contaminate their observations.
    """
    if grid is None:
        capacity = estimate_capacity(workload_factory)
        grid = default_offered_grid(capacity)
        if progress is not None:
            progress(
                f"[sweep] estimated capacity {capacity:,.0f} tps; "
                f"grid: {', '.join(f'{g:,.0f}' for g in grid)}"
            )
    curves = []
    for protocol in protocols:
        curve: Optional[LoadCurve] = None
        for offered in grid:
            point = run_load_point(
                protocol,
                workload_factory,
                offered,
                duration=duration,
                arrivals=arrivals,
                users=users,
                zipf_theta=zipf_theta,
                monitor_factory=monitor_factory,
                check_oracle=check_oracle,
                **point_kwargs,
            )
            if curve is None:
                curve = LoadCurve(protocol, point.workload, point.arrivals)
            curve.points.append(point)
            if progress is not None:
                progress(
                    f"[sweep] {protocol:8s} offered={offered:10,.0f} "
                    f"achieved={point.achieved_tps:10,.0f} "
                    f"co_p99={point.co.percentile(99) * 1e6:9.1f}us "
                    f"abort%={100 * point.abort_rate:5.1f} "
                    f"backlog={point.backlog_end}"
                )
        assert curve is not None
        curves.append(curve)
    return curves


def sweep_payload(
    curves: Sequence[LoadCurve], tolerance: float = DEFAULT_TOLERANCE
) -> Dict[str, Any]:
    """The ``BENCH_LOAD.json`` payload (see docs/OBSERVABILITY.md)."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "tolerance": tolerance,
        "workload": curves[0].workload if curves else "",
        "arrivals": curves[0].arrivals if curves else "",
        "curves": {
            curve.protocol: {
                "knee_offered_tps": curve.knee_offered_tps,
                "points": [point.summary() for point in curve.points],
            }
            for curve in curves
        },
    }


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regression check; returns failure messages (empty = pass).

    Per (protocol, offered) point: achieved throughput has a tolerance
    floor, CO-corrected p99 a tolerance ceiling, and commit counts must
    match exactly (seeded virtual time — drift means behaviour change).
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    failures: List[str] = []
    current_curves = current.get("curves", {})
    for protocol, base_curve in baseline.get("curves", {}).items():
        curve = current_curves.get(protocol)
        if curve is None:
            failures.append(f"{protocol}: missing from current sweep")
            continue
        current_points = {
            point["offered_tps"]: point for point in curve.get("points", [])
        }
        for base_point in base_curve.get("points", []):
            offered = base_point["offered_tps"]
            label = f"{protocol} @ {offered:,.0f} tps"
            point = current_points.get(offered)
            if point is None:
                failures.append(f"{label}: point missing from current sweep")
                continue
            floor = base_point["achieved_tps"] * (1.0 - tolerance)
            if point["achieved_tps"] < floor:
                failures.append(
                    f"{label}: achieved {point['achieved_tps']:,.0f} tps "
                    f"< floor {floor:,.0f} "
                    f"(baseline {base_point['achieved_tps']:,.0f}, "
                    f"tolerance {tolerance:.0%})"
                )
            ceiling = base_point["co_p99_us"] * (1.0 + tolerance)
            if point["co_p99_us"] > ceiling:
                failures.append(
                    f"{label}: co_p99 {point['co_p99_us']:,.1f}us "
                    f"> ceiling {ceiling:,.1f}us "
                    f"(baseline {base_point['co_p99_us']:,.1f}us)"
                )
            if point["commits"] != base_point["commits"]:
                failures.append(
                    f"{label}: commit count changed "
                    f"{base_point['commits']} -> {point['commits']} "
                    "(seeded behaviour drift; regenerate the baseline "
                    "deliberately)"
                )
    return failures


def _bar(value: float, peak: float, width: int = 30) -> str:
    filled = int(round(width * value / peak)) if peak else 0
    return "#" * min(width, filled)


def format_curves(curves: Sequence[LoadCurve]) -> str:
    """Terminal rendering: one table per protocol + a knee summary."""
    parts: List[str] = []
    peak_p99 = max(
        (point.co.percentile(99) for curve in curves for point in curve.points),
        default=0.0,
    )
    for curve in curves:
        rows = []
        for point in curve.points:
            p99 = point.co.percentile(99)
            rows.append(
                (
                    f"{point.offered:,.0f}",
                    f"{point.achieved_tps:,.0f}",
                    f"{point.co.percentile(50) * 1e6:.1f}",
                    f"{p99 * 1e6:.1f}",
                    f"{point.co.percentile(99.9) * 1e6:.1f}",
                    f"{100 * point.abort_rate:.1f}",
                    f"{point.queue_depth_mean:.1f}",
                    point.backlog_end,
                    _bar(p99, peak_p99),
                )
            )
        knee = curve.knee_offered_tps
        knee_text = f"{knee:,.0f} tps" if knee is not None else "not reached"
        parts.append(
            render_rows(
                [
                    "offered",
                    "achieved",
                    "co_p50us",
                    "co_p99us",
                    "co_p999us",
                    "abort%",
                    "queue",
                    "backlog",
                    "p99 (CO-corrected)",
                ],
                rows,
                title=(
                    f"{curve.protocol} / {curve.workload} / {curve.arrivals} "
                    f"(knee: {knee_text})"
                ),
            )
        )
        violations = [v for point in curve.points for v in point.violations]
        if violations:
            parts.append(
                "violations:\n  " + "\n  ".join(violations[:10]) + "\n"
            )
    return "\n".join(parts)
