"""Hot-key contention sweep across the protocol zoo (Figs 13-14 axis).

Every lock strategy in the zoo behaves identically when transactions
never collide; the differences the strategy refactor exists to expose —
CAS retry storms vs FAA ticket fairness, logged vs logless commit under
abort pressure — only show up when many coordinators hammer the same
few keys.  This sweep drives the paper's hot-object microbenchmark
(RMW transactions over a 1 000-key table) through the open-loop engine
at three Zipf skews per protocol and reports abort-rate and CO-corrected
p99 against offered load.

``contention_payload`` serialises the sweep into the committed
``BENCH_CONTENTION.json`` snapshot and ``compare_contention_to_baseline``
gates a fresh run against it exactly like the BENCH_KERNEL / BENCH_LOAD
gates: achieved throughput has a tolerance floor, CO-corrected p99 a
tolerance ceiling, abort rate a tolerance ceiling, and commit counts
must reproduce exactly (seeded virtual time — drift means simulated
behaviour changed and the baseline must be regenerated deliberately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.load.engine import LoadResult
from repro.load.sweep import LoadCurve, format_curves, run_load_point
from repro.workloads import MicroBenchmark

__all__ = [
    "CONTENTION_SCHEMA",
    "CONTENTION_TOLERANCE",
    "CONTENTION_PROTOCOLS",
    "CONTENTION_THETAS",
    "HOT_KEYS",
    "ContentionCurve",
    "contention_workload",
    "run_contention_sweep",
    "contention_payload",
    "compare_contention_to_baseline",
    "format_contention",
]

#: Snapshot format marker (bump on incompatible payload changes).
CONTENTION_SCHEMA = "contention/1"

#: Same rationale as the kernel-perf and load gates.
CONTENTION_TOLERANCE = 0.25

#: The full zoo: every strategy triple the engine can run.
CONTENTION_PROTOCOLS = ("pandora", "ford", "tradlog", "lotus", "vote1pc")

#: Zipf skews over the hot keyspace: YCSB-standard 0.99, then two
#: progressively hotter tails where a handful of keys absorb most of
#: the traffic and lock-queue behaviour dominates.
CONTENTION_THETAS = (0.99, 1.2, 1.5)

#: The paper's small hot set (Fig 13): 1 000 keys.
HOT_KEYS = 1_000


@dataclass
class ContentionCurve:
    """One (protocol, zipf-theta) abort/latency-vs-offered-load curve."""

    protocol: str
    theta: float
    workload: str = "microbench"
    arrivals: str = "poisson"
    points: List[LoadResult] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.protocol} s={self.theta:g}"


def contention_workload(theta: float, hot_keys: int = HOT_KEYS) -> MicroBenchmark:
    """The hot-object microbenchmark at one skew.

    RMW transactions (read-for-update, then write) hold each lock across
    a round trip, so two transactions sampling the same hot key genuinely
    collide — blind writes would pipeline past each other and hide the
    lock strategy entirely.
    """
    return MicroBenchmark(
        num_keys=hot_keys,
        write_ratio=0.5,
        ops_per_txn=2,
        zipf_theta=theta,
        rmw=True,
    )


def run_contention_sweep(
    protocols: Sequence[str] = CONTENTION_PROTOCOLS,
    thetas: Sequence[float] = CONTENTION_THETAS,
    grid: Sequence[float] = (150_000.0, 600_000.0),
    duration: float = 5e-3,
    users: int = 64,
    seed: int = 42,
    progress: Optional[Callable[[str], None]] = None,
    **point_kwargs,
) -> List[ContentionCurve]:
    """Walk the offered grid for every (protocol, theta) pair.

    The grid is fixed rather than capacity-derived so the committed
    baseline is stable: one point the cluster keeps up with and one past
    the saturation knee, where queueing on the hot keys separates the
    lock strategies.
    """
    curves: List[ContentionCurve] = []
    for theta in thetas:
        factory = lambda theta=theta: contention_workload(theta)  # noqa: E731
        for protocol in protocols:
            curve = ContentionCurve(protocol=protocol, theta=theta)
            for offered in grid:
                point = run_load_point(
                    protocol,
                    factory,
                    offered,
                    duration=duration,
                    users=users,
                    seed=seed,
                    **point_kwargs,
                )
                curve.workload = point.workload
                curve.arrivals = point.arrivals
                curve.points.append(point)
                if progress is not None:
                    progress(
                        f"[contention] {curve.label:16s} "
                        f"offered={offered:10,.0f} "
                        f"achieved={point.achieved_tps:10,.0f} "
                        f"abort%={100 * point.abort_rate:5.1f} "
                        f"co_p99={point.co.percentile(99) * 1e6:9.1f}us"
                    )
            curves.append(curve)
    return curves


def contention_payload(
    curves: Sequence[ContentionCurve], tolerance: float = CONTENTION_TOLERANCE
) -> Dict[str, Any]:
    """The ``BENCH_CONTENTION.json`` payload.

    Curves are keyed by ``"<protocol> s=<theta>"`` with the same point
    dicts as the load snapshot, so ``render_load_html`` and the
    ``obs-report --compare`` delta table work on it unchanged.
    """
    return {
        "schema": CONTENTION_SCHEMA,
        "tolerance": tolerance,
        "workload": curves[0].workload if curves else "",
        "arrivals": curves[0].arrivals if curves else "",
        "hot_keys": HOT_KEYS,
        "curves": {
            curve.label: {
                "protocol": curve.protocol,
                "theta": curve.theta,
                "points": [point.summary() for point in curve.points],
            }
            for curve in curves
        },
    }


def compare_contention_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regression check; returns failure messages (empty = pass).

    Per (protocol, theta, offered) point: achieved throughput has a
    tolerance floor, CO-corrected p99 and abort rate tolerance ceilings
    (abort rate with a two-point absolute grace so near-zero baselines
    do not gate on noise-sized wiggles), and commit counts must match
    exactly.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", CONTENTION_TOLERANCE))
    failures: List[str] = []
    current_curves = current.get("curves", {})
    for label, base_curve in baseline.get("curves", {}).items():
        curve = current_curves.get(label)
        if curve is None:
            failures.append(f"{label}: missing from current sweep")
            continue
        current_points = {
            point["offered_tps"]: point for point in curve.get("points", [])
        }
        for base_point in base_curve.get("points", []):
            offered = base_point["offered_tps"]
            tag = f"{label} @ {offered:,.0f} tps"
            point = current_points.get(offered)
            if point is None:
                failures.append(f"{tag}: point missing from current sweep")
                continue
            floor = base_point["achieved_tps"] * (1.0 - tolerance)
            if point["achieved_tps"] < floor:
                failures.append(
                    f"{tag}: achieved {point['achieved_tps']:,.0f} tps "
                    f"< floor {floor:,.0f} "
                    f"(baseline {base_point['achieved_tps']:,.0f}, "
                    f"tolerance {tolerance:.0%})"
                )
            ceiling = base_point["co_p99_us"] * (1.0 + tolerance)
            if point["co_p99_us"] > ceiling:
                failures.append(
                    f"{tag}: co_p99 {point['co_p99_us']:,.1f}us "
                    f"> ceiling {ceiling:,.1f}us "
                    f"(baseline {base_point['co_p99_us']:,.1f}us)"
                )
            abort_ceiling = (
                base_point["abort_rate"] * (1.0 + tolerance) + 0.02
            )
            if point["abort_rate"] > abort_ceiling:
                failures.append(
                    f"{tag}: abort rate {point['abort_rate']:.4f} "
                    f"> ceiling {abort_ceiling:.4f} "
                    f"(baseline {base_point['abort_rate']:.4f})"
                )
            if point["commits"] != base_point["commits"]:
                failures.append(
                    f"{tag}: commit count changed "
                    f"{base_point['commits']} -> {point['commits']} "
                    "(seeded behaviour drift; regenerate the baseline "
                    "deliberately)"
                )
    return failures


def format_contention(curves: Sequence[ContentionCurve]) -> str:
    """Terminal rendering: reuse the load-curve tables per (proto, s)."""
    return format_curves(
        [
            LoadCurve(
                protocol=curve.label,
                workload=curve.workload,
                arrivals=curve.arrivals,
                points=curve.points,
            )
            for curve in curves
        ]
    )
