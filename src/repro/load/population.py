"""A Zipf-skewed user population with per-user sessions.

The open-loop engine asks the population for the next request at each
arrival instant. The population draws *which user* issues it from a
Zipf distribution over user ids (the alias-method sampler makes this
O(1) per arrival), then asks the workload for that user's next
transaction through :meth:`Workload.user_transaction` — so a hot user
hammers their own home rows and population skew becomes key skew.

Users think in *sessions*: a user arrives, issues a geometrically
distributed number of requests from a session-private RNG, and leaves.
Session RNGs are derived deterministically from (population seed, user,
session ordinal), so the full request sequence is reproducible from the
seed alone regardless of how arrivals interleave.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.util.zipf import ZipfSampler

__all__ = ["Request", "UserPopulation"]

# Knuth-style multiplicative hash used to decorrelate per-user streams.
_MIX = 2654435761


class Request:
    """One intended arrival: who, when, and what transaction."""

    __slots__ = ("user", "intended", "logic", "dispatched", "completed", "outcome")

    def __init__(self, user: int, intended: float, logic: Callable) -> None:
        self.user = user
        self.intended = intended
        self.logic = logic
        self.dispatched: Optional[float] = None
        self.completed: Optional[float] = None
        self.outcome = None


class _Session:
    """Live session state for one user: remaining requests + RNG."""

    __slots__ = ("remaining", "rng")

    def __init__(self, remaining: int, rng: random.Random) -> None:
        self.remaining = remaining
        self.rng = rng


class UserPopulation:
    """Draws requests from a skewed population of session-based users."""

    def __init__(
        self,
        workload,
        users: int = 1000,
        zipf_theta: float = 0.99,
        session_length: float = 20.0,
        seed: int = 0,
    ) -> None:
        if users <= 0:
            raise ValueError(f"users must be positive, got {users}")
        if session_length < 1:
            raise ValueError(
                f"session_length must be >= 1, got {session_length}"
            )
        self.workload = workload
        self.users = users
        self.session_length = session_length
        self.seed = seed
        self._who = ZipfSampler(users, zipf_theta, random.Random(seed ^ _MIX))
        # user -> live session; sessions are created lazily on a user's
        # first arrival and evicted when exhausted, so memory tracks the
        # *active* population, not the configured one.
        self._sessions: Dict[int, _Session] = {}
        self._session_counts: Dict[int, int] = {}
        self.sessions_started = 0

    def _session_for(self, user: int) -> _Session:
        session = self._sessions.get(user)
        if session is None:
            ordinal = self._session_counts.get(user, 0)
            self._session_counts[user] = ordinal + 1
            self.sessions_started += 1
            rng = random.Random((self.seed << 32) ^ (user * _MIX) ^ ordinal)
            # Geometric session length with the configured mean, min 1.
            remaining = 1
            while rng.random() * self.session_length > 1.0:
                remaining += 1
            session = self._sessions[user] = _Session(remaining, rng)
        return session

    def next_request(self, now: float) -> Request:
        """The request intended at virtual time *now*."""
        user = self._who.sample()
        session = self._session_for(user)
        logic = self.workload.user_transaction(user, session.rng)
        session.remaining -= 1
        if session.remaining <= 0:
            del self._sessions[user]
        return Request(user, now, logic)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)
