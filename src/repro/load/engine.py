"""The open-loop driver: arrivals meet a bounded coordinator pool.

The engine turns the cluster's coordinators into a *service pool*: an
arrival process generates intended request times, the population picks
the user and transaction, and each request either grabs a free
coordinator immediately or waits in a FIFO queue. Issuance never slows
down because the system is slow — that is the defining property of
open-loop load, and it is what makes the saturation knee measurable.

Latency is **coordinated-omission corrected**: every sample is measured
from the request's *intended* arrival time, so time spent waiting for a
free coordinator counts. Requests still queued or in flight when the
drain deadline passes are added to the latency histogram as censored
samples at their current age — reporting "p99 of the lucky requests
that finished" is exactly the omission the correction exists to avoid.

The engine can also crash compute nodes mid-run (chaos-under-load):
killed in-flight requests count as ``unknown`` outcomes, and the
end-of-run oracle (:func:`repro.chaos.oracle.check_cluster`) plus the
workload-level invariant monitors report anything the protocol broke
while the traffic was live.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.chaos.oracle import check_cluster
from repro.load.arrivals import ArrivalProcess, PoissonArrivals
from repro.load.population import Request, UserPopulation
from repro.util.stats import Histogram

__all__ = ["LoadResult", "OpenLoopEngine", "Request"]


class LoadResult:
    """Everything measured at one offered-load point."""

    def __init__(self, protocol: str, workload: str, arrivals: str, offered: float,
                 duration: float) -> None:
        self.protocol = protocol
        self.workload = workload
        self.arrivals = arrivals
        self.offered = offered
        self.duration = duration
        # Counts over the measured window (intended >= warmup end).
        self.intended = 0
        self.completed = 0
        self.commits = 0
        self.aborts = 0
        self.unknown = 0
        self.censored = 0
        self.abort_reasons: Counter = Counter()
        # Latency from the intended arrival (CO-corrected) and from
        # dispatch (pure service time) — the gap between the two *is*
        # the queueing delay.
        self.co = Histogram(min_value=1e-7, max_value=10.0)
        self.service = Histogram(min_value=1e-7, max_value=10.0)
        self.queue_depth_mean = 0.0
        self.queue_depth_peak = 0
        self.backlog_end = 0
        self.sessions = 0
        self.violations: List[str] = []
        self.slo_breaches: Dict[str, int] = {}

    @property
    def achieved_tps(self) -> float:
        return self.commits / self.duration if self.duration else 0.0

    @property
    def abort_rate(self) -> float:
        done = self.commits + self.aborts
        return self.aborts / done if done else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly view of this point (all latencies in us)."""
        return {
            "offered_tps": round(self.offered, 2),
            "achieved_tps": round(self.achieved_tps, 2),
            "intended": self.intended,
            "completed": self.completed,
            "commits": self.commits,
            "aborts": self.aborts,
            "unknown": self.unknown,
            "censored": self.censored,
            "abort_rate": round(self.abort_rate, 6),
            "co_p50_us": round(self.co.percentile(50) * 1e6, 3),
            "co_p99_us": round(self.co.percentile(99) * 1e6, 3),
            "co_p999_us": round(self.co.percentile(99.9) * 1e6, 3),
            "service_p50_us": round(self.service.percentile(50) * 1e6, 3),
            "service_p99_us": round(self.service.percentile(99) * 1e6, 3),
            "queue_depth_mean": round(self.queue_depth_mean, 3),
            "queue_depth_peak": self.queue_depth_peak,
            "backlog_end": self.backlog_end,
            "violations": list(self.violations),
            "slo_breaches": dict(self.slo_breaches),
        }


class OpenLoopEngine:
    """Drives one offered-load point against a built (unstarted) cluster."""

    def __init__(
        self,
        cluster,
        population: UserPopulation,
        offered: float,
        duration: float,
        arrivals: Optional[ArrivalProcess] = None,
        warmup: float = 2e-3,
        drain_grace: float = 20e-3,
        quiesce_grace: float = 60e-3,
        seed: int = 0,
        monitors: Sequence = (),
        slo=None,
        check_oracle: bool = False,
        crash_compute: Sequence[Tuple[int, float]] = (),
    ) -> None:
        if offered <= 0:
            raise ValueError(f"offered rate must be positive, got {offered}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.population = population
        self.offered = offered
        self.duration = duration
        self.arrivals = arrivals if arrivals is not None else PoissonArrivals()
        self.warmup = warmup
        self.drain_grace = drain_grace
        self.quiesce_grace = quiesce_grace
        self.seed = seed
        self.monitors = list(monitors)
        self.slo = slo
        self.check_oracle = check_oracle
        self.crash_compute = list(crash_compute)

        self._free: List = []
        self._busy: Dict[int, object] = {}
        self._known: set = set()
        self._inflight: Dict[int, Request] = {}
        self._queue: Deque[Request] = deque()
        self._queue_area = 0.0
        self._queue_mark = 0.0
        self._closed = False
        self._measure_from = 0.0
        self._history: List = []
        self._monitor_errors: List[str] = []
        self.result = LoadResult(
            cluster.config.protocol,
            cluster.workload.name,
            self.arrivals.name,
            offered,
            duration,
        )

    # -- coordinator pool ----------------------------------------------------

    @staticmethod
    def _usable(coordinator) -> bool:
        node = coordinator.node
        return node.alive and not node.fenced and coordinator in node.coordinators

    def _adopt(self, coordinator) -> None:
        """Register log regions, then add the coordinator to the pool."""
        self._known.add(id(coordinator))

        def ready():
            registrations = [
                coordinator.verbs.register_log_region(node_id, coordinator.coord_id)
                for node_id in coordinator.catalog.log_nodes(coordinator.coord_id)
            ]
            yield self.sim.all_of(registrations)
            if self._usable(coordinator):
                self._free.append(coordinator)
                self._drain_queue()

        self.sim.process(ready(), name=f"load-adopt-{coordinator.coord_id}")

    def _refresh_pool(self) -> None:
        """Adopt coordinators spawned after start (compute restarts)."""
        for coordinator in self.cluster.all_coordinators():
            if id(coordinator) not in self._known and self._usable(coordinator):
                self._adopt(coordinator)

    def _take_coordinator(self):
        while self._free:
            coordinator = self._free.pop()
            if self._usable(coordinator):
                return coordinator
            self._known.discard(id(coordinator))
        self._refresh_pool()
        return None

    # -- request flow --------------------------------------------------------

    def _queue_tick(self) -> None:
        now = self.sim.now
        self._queue_area += len(self._queue) * (now - self._queue_mark)
        self._queue_mark = now

    def _admit(self, request: Request) -> None:
        if request.intended >= self._measure_from:
            self.result.intended += 1
        coordinator = self._take_coordinator()
        if coordinator is None:
            self._queue_tick()
            self._queue.append(request)
            if len(self._queue) > self.result.queue_depth_peak:
                self.result.queue_depth_peak = len(self._queue)
        else:
            self._dispatch(coordinator, request)

    def _dispatch(self, coordinator, request: Request) -> None:
        request.dispatched = self.sim.now
        self._busy[id(coordinator)] = coordinator
        self._inflight[id(request)] = request
        process = self.sim.process(
            self._serve(coordinator, request), name=f"load-u{request.user}"
        )
        coordinator.process = process  # so node.crash() kills it
        process.add_callback(
            lambda event, c=coordinator, r=request: self._on_done(c, r, event)
        )

    def _serve(self, coordinator, request: Request):
        outcome = yield from coordinator.run_transaction(request.logic)
        return outcome

    def _drain_queue(self) -> None:
        while self._queue and not self._closed:
            coordinator = self._take_coordinator()
            if coordinator is None:
                return
            self._queue_tick()
            request = self._queue.popleft()
            self._dispatch(coordinator, request)

    def _on_done(self, coordinator, request: Request, event) -> None:
        # Kernel completion callback: must never raise.
        now = self.sim.now
        result = self.result
        self._busy.pop(id(coordinator), None)
        self._inflight.pop(id(request), None)
        try:
            outcome = event.value
        except BaseException:  # noqa: BLE001 — killed by a crash, or fenced
            outcome = None
        request.completed = now
        request.outcome = outcome
        if self._closed:
            # Post-drain completion during quiescence: this request was
            # already censored into the histogram; recording it again
            # would double count.
            if self._usable(coordinator):
                self._free.append(coordinator)
            return
        measured = request.intended >= self._measure_from
        if outcome is None:
            if measured:
                result.unknown += 1
        else:
            if measured:
                result.completed += 1
                result.co.add(now - request.intended)
                result.service.add(now - request.dispatched)
            if outcome.committed:
                if measured:
                    result.commits += 1
                self.cluster.timeline.record(now)
                for monitor in self.monitors:
                    try:
                        monitor.on_commit(request, outcome, now)
                    except Exception as error:  # noqa: BLE001
                        self._monitor_errors.append(
                            f"LOAD-MONITOR {type(monitor).__name__} raised: {error!r}"
                        )
            elif measured:
                result.aborts += 1
                result.abort_reasons[outcome.reason] += 1
            if self.slo is not None:
                self.slo.observe(now, now - request.intended, outcome.committed)
        if self._usable(coordinator):
            self._free.append(coordinator)
        self._drain_queue()

    # -- run -----------------------------------------------------------------

    def run(self) -> LoadResult:
        """Drive the whole point: warmup, measured window, drain, checks."""
        cluster = self.cluster
        sim = self.sim
        for coordinator in cluster.all_coordinators():
            coordinator.history_sink = self._history
        for monitor in self.monitors:
            monitor.attach(cluster)
        cluster.start(run_coordinators=False)
        for coordinator in cluster.all_coordinators():
            self._adopt(coordinator)

        t0 = sim.now
        self._measure_from = t0 + self.warmup
        self._queue_mark = t0
        horizon = t0 + self.warmup + self.duration
        for node_id, at in self.crash_compute:
            cluster.crash_compute(node_id, at=t0 + at)

        arrival_rng = random.Random(self.seed)

        def arrival_loop():
            for when in self.arrivals.times(self.offered, t0, horizon, arrival_rng):
                delay = when - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                self._admit(self.population.next_request(when))

        sim.process(arrival_loop(), name="load-arrivals")
        if self.slo is not None:
            sim.process(self.slo.ticker(self), name="load-slo")

        cluster.run(until=horizon)
        deadline = horizon + self.drain_grace
        while sim.now < deadline and (self._busy or self._queue):
            cluster.run(until=min(deadline, sim.now + 1e-3))
        self._closed = True

        # Censor whatever is still queued or in flight: its latency is
        # *at least* its current age, and pretending it does not exist
        # would understate the tail exactly where it matters.
        drain_end = sim.now
        self._queue_tick()
        result = self.result
        leftovers = list(self._inflight.values()) + list(self._queue)
        for request in leftovers:
            if request.intended >= self._measure_from:
                result.co.add(drain_end - request.intended)
                result.censored += 1
        result.backlog_end = len(leftovers)
        result.queue_depth_mean = (
            self._queue_area / (drain_end - t0) if drain_end > t0 else 0.0
        )
        result.sessions = self.population.sessions_started
        if self.slo is not None:
            result.slo_breaches = dict(self.slo.breaches)

        if self.check_oracle:
            result.violations.extend(self._quiesce_and_check())
        strict = result.unknown == 0 and result.backlog_end == 0
        for monitor in self.monitors:
            result.violations.extend(monitor.check_final(cluster, strict=strict))
        result.violations.extend(self._monitor_errors)
        return result

    def _quiesce_and_check(self) -> List[str]:
        """Wait out in-flight work and recovery, then run the oracle."""
        cluster = self.cluster
        sim = self.sim
        deadline = sim.now + self.quiesce_grace
        while sim.now < deadline:
            recovering = bool(cluster.recovery._in_progress)
            if not self._busy and not recovering:
                break
            cluster.run(until=min(deadline, sim.now + 1e-3))
        # Margin for notification deliveries still in flight.
        cluster.run(until=sim.now + 2e-3)
        return [str(v) for v in check_cluster(cluster, self._history)]
