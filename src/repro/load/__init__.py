"""repro.load — the open-loop, population-scale traffic engine.

Closed-loop drivers (litmus, fuzzer, microbench) couple request
issuance to request completion: when the system slows down the driver
slows down with it, so the saturation knee and the queueing tail are
invisible. This package drives the protocol engines the way a real
population would:

* :mod:`repro.load.arrivals` — open-loop arrival processes (Poisson,
  bursty/MMPP, diurnal ramp) generating *intended* arrival times that
  do not depend on how the system is coping.
* :mod:`repro.load.population` — a Zipf-skewed user population with
  per-user sessions over the SmallBank/TATP/TPC-C mixes (hot users
  create hot keys through ``Workload.user_transaction``).
* :mod:`repro.load.engine` — the open-loop driver: requests queue for
  a bounded coordinator pool, latency is coordinated-omission-corrected
  (measured from the intended arrival time, so queueing delay counts),
  and queue depth/backlog are first-class measurements.
* :mod:`repro.load.slo` — live rolling-window SLO monitors and the
  chaos oracle's workload-level invariants (money conservation,
  order-id consistency) evaluated under traffic.
* :mod:`repro.load.sweep` — walks offered load across a grid and emits
  latency-vs-offered-load curves per protocol, with ``BENCH_LOAD.json``
  snapshots and baseline gating for CI.
* :mod:`repro.load.contention` — the hot-key contention sweep: the
  paper's 1 000-key RMW microbenchmark at three Zipf skews across the
  full protocol zoo, with ``BENCH_CONTENTION.json`` gating.
"""

from repro.load.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.load.engine import LoadResult, OpenLoopEngine, Request
from repro.load.population import UserPopulation
from repro.load.slo import (
    ConservationMonitor,
    OrderIdMonitor,
    SloMonitor,
    WorkloadInvariant,
)
from repro.load.contention import (
    CONTENTION_PROTOCOLS,
    CONTENTION_SCHEMA,
    CONTENTION_THETAS,
    CONTENTION_TOLERANCE,
    ContentionCurve,
    compare_contention_to_baseline,
    contention_payload,
    contention_workload,
    format_contention,
    run_contention_sweep,
)
from repro.load.sweep import (
    DEFAULT_MULTIPLIERS,
    DEFAULT_PROTOCOLS,
    DEFAULT_TOLERANCE,
    SNAPSHOT_SCHEMA,
    LoadCurve,
    compare_to_baseline,
    default_offered_grid,
    estimate_capacity,
    format_curves,
    run_load_point,
    run_sweep,
    sweep_payload,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "DiurnalArrivals",
    "make_arrivals",
    "UserPopulation",
    "Request",
    "OpenLoopEngine",
    "LoadResult",
    "SloMonitor",
    "WorkloadInvariant",
    "ConservationMonitor",
    "OrderIdMonitor",
    "LoadCurve",
    "run_load_point",
    "run_sweep",
    "estimate_capacity",
    "default_offered_grid",
    "sweep_payload",
    "compare_to_baseline",
    "format_curves",
    "SNAPSHOT_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_MULTIPLIERS",
    "ContentionCurve",
    "contention_workload",
    "run_contention_sweep",
    "contention_payload",
    "compare_contention_to_baseline",
    "format_contention",
    "CONTENTION_SCHEMA",
    "CONTENTION_TOLERANCE",
    "CONTENTION_PROTOCOLS",
    "CONTENTION_THETAS",
]
