"""Live SLO monitors and workload-level invariants under traffic.

Two kinds of watcher ride along with an open-loop run:

* :class:`SloMonitor` — a periodic simulated process that maintains
  rolling-window latency/abort gauges (``load.win_p99_us``,
  ``load.win_abort_rate``, ``load.queue_depth``, ``load.inflight``) in
  a :class:`~repro.obs.metrics.MetricsRegistry`, counts SLO breaches
  against optional targets, and emits an in-run progress line through a
  caller-supplied callback (the CLI wires that to ``print``; the
  engine itself never prints).

* :class:`WorkloadInvariant` subclasses — semantic end-to-end checks
  the chaos oracle cannot express because they live above the KV
  layer: SmallBank money conservation and TPC-C per-district order-id
  consistency. They observe commit acknowledgements as they happen and
  re-verify against the final memory state after quiescence.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, RollingWindow

__all__ = [
    "SloMonitor",
    "WorkloadInvariant",
    "ConservationMonitor",
    "OrderIdMonitor",
]


class SloMonitor:
    """Rolling-window latency/abort gauges with breach accounting."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        window: float = 2e-3,
        interval: float = 1e-3,
        p99_target: Optional[float] = None,
        abort_rate_target: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.interval = interval
        self.latency = RollingWindow(window)
        self.outcomes = RollingWindow(window)
        self.p99_target = p99_target
        self.abort_rate_target = abort_rate_target
        self.progress = progress
        self.breaches: Dict[str, int] = {"latency": 0, "abort_rate": 0}
        self.ticks = 0

    def observe(self, now: float, co_latency: float, committed: bool) -> None:
        """One completed request: CO-corrected latency + outcome."""
        self.latency.add(now, co_latency)
        self.outcomes.add(now, 0.0 if committed else 1.0)

    def ticker(self, engine):
        """The periodic gauge-refresh process (spawned by the engine)."""
        sim = engine.sim
        while True:
            yield sim.timeout(self.interval)
            now = sim.now
            p99 = self.latency.percentile(now, 99)
            abort_rate = self.outcomes.mean(now)
            depth = len(engine._queue)
            inflight = len(engine._busy)
            self.registry.gauge("load.win_p99_us").set(p99 * 1e6)
            self.registry.gauge("load.win_abort_rate").set(abort_rate)
            self.registry.gauge("load.queue_depth").set(depth)
            self.registry.gauge("load.inflight").set(inflight)
            if self.p99_target is not None and p99 > self.p99_target:
                self.breaches["latency"] += 1
            if (
                self.abort_rate_target is not None
                and abort_rate > self.abort_rate_target
            ):
                self.breaches["abort_rate"] += 1
            self.ticks += 1
            if self.progress is not None:
                self.progress(
                    f"[load] t={now * 1e3:7.2f}ms inflight={inflight:3d} "
                    f"queue={depth:4d} win_p99={p99 * 1e6:8.1f}us "
                    f"win_abort={100 * abort_rate:5.1f}%"
                )


class WorkloadInvariant:
    """Base class for workload-level oracle checks under traffic."""

    def attach(self, cluster) -> None:
        """Capture pre-traffic state (called before the cluster starts)."""

    def on_commit(self, request, outcome, now: float) -> None:
        """Observe one client-acknowledged commit."""

    def check_final(self, cluster, strict: bool = True) -> List[str]:
        """Verify the final state; ``strict`` means every outcome was
        observed (no killed requests, no leftover backlog)."""
        return []


class ConservationMonitor(WorkloadInvariant):
    """SmallBank money conservation: traffic moves balance, never mints it.

    Requires a balance-neutral mix (``SmallBank(conserving_only=True)``)
    — deposits obviously grow the total, so the default mix cannot be
    checked this way.
    """

    def __init__(self, workload) -> None:
        self.workload = workload
        self._initial: Optional[int] = None

    def attach(self, cluster) -> None:
        self._initial = self.workload.total_balance(
            cluster.catalog, cluster.memory_nodes
        )

    def check_final(self, cluster, strict: bool = True) -> List[str]:
        if self._initial is None:
            return ["LOAD-CONSERVE monitor was never attached"]
        final = self.workload.total_balance(cluster.catalog, cluster.memory_nodes)
        if final != self._initial:
            return [
                f"LOAD-CONSERVE total balance drifted "
                f"{self._initial} -> {final} (delta {final - self._initial})"
            ]
        return []


class OrderIdMonitor(WorkloadInvariant):
    """TPC-C per-district order-id consistency.

    Each committed new-order transaction atomically reads the district's
    ``next_o_id`` under a write lock and increments it, so:

    * no order id is ever allocated twice within a district (a
      duplicate means a lost update on the counter), and
    * the final counter equals 1 + the number of committed new-orders
      for that district (checked only when every outcome was observed;
      a killed request may have committed without us seeing the ack).

    Commit-*ack* order is deliberately not required to be monotone: a
    later allocation can overtake an earlier one between lock release
    and client acknowledgement without any protocol violation.
    """

    def __init__(self, workload) -> None:
        self.workload = workload
        # (warehouse, district) -> set of committed order ids.
        self._seen: Dict[Tuple[int, int], set] = {}
        self.violations: List[str] = []

    def on_commit(self, request, outcome, now: float) -> None:
        value = outcome.value
        if not isinstance(value, dict) or value.get("kind") != "new_order":
            return
        district = (value["w"], value["d"])
        o_id = value["o_id"]
        seen = self._seen.setdefault(district, set())
        if o_id in seen:
            self.violations.append(
                f"LOAD-ORDER duplicate o_id {o_id} in district {district} "
                f"at t={now * 1e3:.3f}ms (lost update on next_o_id)"
            )
        seen.add(o_id)

    def check_final(self, cluster, strict: bool = True) -> List[str]:
        from repro.workloads.tpcc import DISTRICTS_PER_WAREHOUSE, TABLE_DISTRICT

        problems = list(self.violations)
        catalog = cluster.catalog
        for w in range(self.workload.warehouses):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                slot = catalog.slot_for(TABLE_DISTRICT, (w, d))
                primary = catalog.primary(TABLE_DISTRICT, slot)
                entry = cluster.memory_nodes[primary].slot(TABLE_DISTRICT, slot)
                if not entry.present:
                    problems.append(f"LOAD-ORDER district {(w, d)} row missing")
                    continue
                next_o_id = entry.value["next_o_id"]
                seen = self._seen.get((w, d), set())
                over = [o_id for o_id in seen if o_id >= next_o_id]
                if over:
                    problems.append(
                        f"LOAD-ORDER district {(w, d)} committed ids "
                        f"{sorted(over)[:4]} >= final next_o_id {next_o_id}"
                    )
                if strict and next_o_id != 1 + len(seen):
                    problems.append(
                        f"LOAD-ORDER district {(w, d)} final next_o_id "
                        f"{next_o_id} != 1 + {len(seen)} observed commits"
                    )
        return problems
