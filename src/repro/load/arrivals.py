"""Open-loop arrival processes: intended request times.

An arrival process generates the absolute times at which the *population*
decides to issue requests. Open-loop means these times never depend on
how the system is coping — a saturated cluster keeps receiving arrivals
at the offered rate and the backlog grows, which is exactly the regime
closed-loop drivers cannot produce.

Every process is deterministic given a seeded ``random.Random`` and is
parameterised by the *mean* offered rate, so a sweep point offering
``rate`` txn/s offers that rate on average under every shape:

* :class:`PoissonArrivals` — memoryless, the M/G/c reference shape.
* :class:`MmppArrivals` — a two-state Markov-modulated Poisson process
  alternating burst and quiet phases (LOTUS-style bursty traffic);
  state rates are scaled so the long-run average equals *rate*.
* :class:`DiurnalArrivals` — a sinusoidal ramp from trough to peak and
  back over the run (a compressed day), sampled by thinning against
  the peak rate.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "make_arrivals",
]


class ArrivalProcess:
    """Generates absolute arrival times in ``[start, end)``."""

    name = "arrival"

    def times(
        self, rate: float, start: float, end: float, rng: random.Random
    ) -> Iterator[float]:
        """Yield strictly increasing arrival times; mean rate = *rate*."""
        raise NotImplementedError

    @staticmethod
    def _check(rate: float, start: float, end: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end})")


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrivals at a constant rate."""

    name = "poisson"

    def times(
        self, rate: float, start: float, end: float, rng: random.Random
    ) -> Iterator[float]:
        self._check(rate, start, end)
        now = start
        while True:
            now += rng.expovariate(rate)
            if now >= end:
                return
            yield now


class MmppArrivals(ArrivalProcess):
    """Two-state MMPP: Poisson bursts alternating with quiet phases.

    The burst state offers ``burst_factor * rate`` and the quiet state
    ``(2 - burst_factor) * rate``; with equal mean dwell times the
    long-run average is exactly *rate*. Dwell times are exponential
    (mean ``dwell`` seconds), so phase boundaries are memoryless and
    arrivals inside a phase are plain Poisson at the phase rate.
    """

    name = "bursty"

    def __init__(self, burst_factor: float = 1.7, dwell: float = 1e-3) -> None:
        if not 1.0 < burst_factor < 2.0:
            raise ValueError(
                f"burst_factor must be in (1, 2), got {burst_factor}"
            )
        if dwell <= 0:
            raise ValueError(f"dwell must be positive, got {dwell}")
        self.burst_factor = burst_factor
        self.dwell = dwell

    def times(
        self, rate: float, start: float, end: float, rng: random.Random
    ) -> Iterator[float]:
        self._check(rate, start, end)
        rates = (self.burst_factor * rate, (2.0 - self.burst_factor) * rate)
        state = 0  # start in the burst phase (worst case first)
        now = start
        phase_end = start + rng.expovariate(1.0 / self.dwell)
        while now < end:
            gap = rng.expovariate(rates[state])
            if now + gap >= phase_end:
                # Cross into the next phase; the exponential is
                # memoryless, so we redraw from the new rate there.
                now = phase_end
                state = 1 - state
                phase_end = now + rng.expovariate(1.0 / self.dwell)
                continue
            now += gap
            if now >= end:
                return
            yield now


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate ramp: trough → peak → trough across the window.

    ``peak_to_trough`` is the ratio between the peak and trough rates;
    the instantaneous rate is ``rate * (1 + a*sin(...))`` with
    ``a = (p-1)/(p+1)``, which averages to *rate* over whole periods.
    Sampling thins a Poisson stream at the peak rate, the standard
    exact method for inhomogeneous Poisson processes.
    """

    name = "diurnal"

    def __init__(self, peak_to_trough: float = 4.0, periods: float = 1.0) -> None:
        if peak_to_trough < 1.0:
            raise ValueError(
                f"peak_to_trough must be >= 1, got {peak_to_trough}"
            )
        if periods <= 0:
            raise ValueError(f"periods must be positive, got {periods}")
        self.peak_to_trough = peak_to_trough
        self.periods = periods

    def rate_at(self, rate: float, fraction: float) -> float:
        """Instantaneous rate at *fraction* in [0, 1] of the window."""
        amplitude = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)
        phase = 2.0 * math.pi * self.periods * fraction
        # -cos starts the day at the trough and peaks mid-period.
        return rate * (1.0 - amplitude * math.cos(phase))

    def times(
        self, rate: float, start: float, end: float, rng: random.Random
    ) -> Iterator[float]:
        self._check(rate, start, end)
        amplitude = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)
        peak_rate = rate * (1.0 + amplitude)
        span = end - start
        now = start
        while True:
            now += rng.expovariate(peak_rate)
            if now >= end:
                return
            wanted = self.rate_at(rate, (now - start) / span)
            if rng.random() * peak_rate < wanted:
                yield now


#: CLI-facing registry: kind name -> zero-argument factory.
ARRIVAL_KINDS: Dict[str, type] = {
    PoissonArrivals.name: PoissonArrivals,
    MmppArrivals.name: MmppArrivals,
    DiurnalArrivals.name: DiurnalArrivals,
}


def make_arrivals(kind: str) -> ArrivalProcess:
    """Instantiate an arrival process by registry name."""
    try:
        return ARRIVAL_KINDS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown arrival kind {kind!r}; choose from {sorted(ARRIVAL_KINDS)}"
        ) from None
