"""Failure injection: crash schedules, crash points, MTTF processes."""

from repro.faults.injector import CrashPlan, FaultInjector
from repro.faults.mttf import MttfProcess

__all__ = ["CrashPlan", "FaultInjector", "MttfProcess"]
