"""Mean-time-to-failure crash/restore process (Fig 7, §6.2).

The PILL-under-failures experiment repeatedly stops half of the
coordinators and brings them back, sweeping the MTTF down to 1 s. This
process crashes a target compute node every ``mttf`` seconds (with
exponential jitter) and restores it ``repair_time`` later, using the
cluster's restart hook so the revived node gets *fresh* coordinator
ids — its old ids stay in every failed-ids bitset, which is what makes
lock stealing observable at low MTTF.
"""

from __future__ import annotations

import logging
import random
from typing import Any, Callable, Generator, Optional

from repro.faults.injector import DEFAULT_FAULT_SEED
from repro.sim import Event, Simulator

__all__ = ["MttfProcess"]

logger = logging.getLogger(__name__)


class MttfProcess:
    """Periodically crash and restore one compute node."""

    def __init__(
        self,
        sim: Simulator,
        node,
        restart: Callable[[Any], None],
        mttf: float,
        repair_time: float = 2e-3,
        rng: Optional[random.Random] = None,
        jitter: bool = True,
    ) -> None:
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        if repair_time < 0:
            raise ValueError("repair_time must be non-negative")
        self.sim = sim
        self.node = node
        self.restart = restart
        self.mttf = mttf
        self.repair_time = repair_time
        if rng is None:
            logger.debug(
                "MttfProcess built without an RNG; seeding with "
                "DEFAULT_FAULT_SEED=%d", DEFAULT_FAULT_SEED,
            )
            rng = random.Random(DEFAULT_FAULT_SEED)
        self.rng = rng
        self.jitter = jitter
        self.crash_count = 0
        self.process = None

    def start(self) -> None:
        self.process = self.sim.process(self._run(), name=f"mttf-{self.node.node_id}")

    def stop(self) -> None:
        if self.process is not None:
            self.process.kill()
            self.process = None

    def _next_gap(self) -> float:
        if self.jitter:
            # Exponential inter-failure times with the requested mean.
            return self.rng.expovariate(1.0 / self.mttf)
        return self.mttf

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            yield self.sim.timeout(max(self._next_gap(), 1e-4))
            if self.node.alive:
                self.node.crash()
                self.crash_count += 1
            yield self.sim.timeout(self.repair_time)
            self.restart(self.node)
