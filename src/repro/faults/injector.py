"""Crash-stop fault injection.

Failures are injected two ways, matching the paper's methodology
(§6.1 "Emulating Failures" and §5's random crash injection):

* **Timed crashes** — a compute or memory node is killed at a chosen
  virtual time, stopping all in-flight transactions in that process.
* **Crash points** — protocol engines call
  :meth:`FaultInjector.crash_point` at every step boundary; a matching
  :class:`CrashPlan` kills the node *exactly there* (after the verbs
  already posted have left the NIC — they still land at memory, which
  is what creates stray locks and partially-applied commits).

The injector is deliberately deterministic given a seeded RNG so that
litmus failures replay.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Event, Simulator

__all__ = ["CrashPlan", "FaultInjector", "DEFAULT_FAULT_SEED"]

# Seed used when a fault component is built without an explicit RNG.
# Kept as a named constant (and logged on use) so a run that silently
# fell back to it is distinguishable from one that was seeded on
# purpose — `rng or random.Random(0)` hid that difference.
DEFAULT_FAULT_SEED = 0

logger = logging.getLogger(__name__)


@dataclass
class CrashPlan:
    """One planned crash, matched against crash-point invocations."""

    node_id: int
    # Match a specific protocol step (None = any step).
    point: Optional[str] = None
    # Crash on the nth matching invocation (1 = first).
    nth: int = 1
    # Or crash probabilistically on every matching invocation.
    probability: float = 0.0
    # Internal countdown state.
    _seen: int = field(default=0, repr=False)
    fired: bool = field(default=False, repr=False)

    def matches(self, point: str) -> bool:
        """True when this plan applies to the named crash point."""
        return self.point is None or self.point == point


class FaultInjector:
    """Holds crash plans and executes them at crash points."""

    def __init__(self, sim: Simulator, rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        if rng is None:
            logger.debug(
                "FaultInjector built without an RNG; seeding with "
                "DEFAULT_FAULT_SEED=%d", DEFAULT_FAULT_SEED,
            )
            rng = random.Random(DEFAULT_FAULT_SEED)
        self.rng = rng
        self._plans_by_node: Dict[int, List[CrashPlan]] = {}
        self.crashes: List[tuple] = []  # (time, node_id, point)

    # -- plan management -----------------------------------------------------

    def add_plan(self, plan: CrashPlan) -> CrashPlan:
        """Register a crash plan."""
        self._plans_by_node.setdefault(plan.node_id, []).append(plan)
        return plan

    def crash_at(self, node, when: float) -> None:
        """Kill *node* at absolute virtual time *when*.

        A no-op if the node is already crashed when the timer is armed
        (scheduling a kill against a corpse would otherwise crash the
        node again should it restart before *when*). The fire-time
        ``alive`` check handles the node dying in between.
        """
        if not node.alive:
            return

        def fire() -> None:
            if node.alive:
                self.crashes.append((self.sim.now, node.node_id, "timer"))
                node.crash()

        self.sim.call_at(when, fire)

    def crash_on_point(self, node_id: int, point: str, nth: int = 1) -> CrashPlan:
        """Kill the node at the nth occurrence of a named crash point."""
        return self.add_plan(CrashPlan(node_id=node_id, point=point, nth=nth))

    def random_crashes(self, node_id: int, probability: float) -> CrashPlan:
        """Kill the node with *probability* at every crash point."""
        return self.add_plan(
            CrashPlan(node_id=node_id, point=None, nth=0, probability=probability)
        )

    def clear(self, node_id: Optional[int] = None) -> None:
        """Drop crash plans (for one node, or all).

        The countdown state of the removed plans is reset so that a
        caller holding a plan reference can re-register it and get a
        fresh plan — previously a cleared-then-re-added plan kept its
        ``_seen``/``fired`` state and either fired early or never.
        """
        if node_id is None:
            removed = [
                plan for plans in self._plans_by_node.values() for plan in plans
            ]
            self._plans_by_node.clear()
        else:
            removed = self._plans_by_node.pop(node_id, [])
        for plan in removed:
            plan._seen = 0
            plan.fired = False

    # -- engine-facing hook ------------------------------------------------------

    def crash_point(self, point: str, coordinator) -> Optional[Event]:
        """Called by engines at each protocol step boundary.

        Returns None when no plan fires (the engine continues
        immediately, zero cost). When a plan fires, the node is crashed
        on the next kernel step and a never-firing event is returned —
        the yielding process is killed while suspended on it, exactly
        like a thread dying between two instructions.
        """
        node = coordinator.node
        plans = self._plans_by_node.get(node.node_id)
        if not plans:
            return None
        if not node.alive:
            # A crash point reached by a process that outlived its
            # node's crash (the kill lands on the next kernel step)
            # must not fire plans, record spurious crashes, or burn
            # RNG draws for probabilistic plans.
            return None
        for plan in plans:
            if plan.fired or not plan.matches(point):
                continue
            if plan.probability > 0.0:
                if self.rng.random() >= plan.probability:
                    continue
            else:
                plan._seen += 1
                if plan._seen < plan.nth:
                    continue
            plan.fired = True
            self.crashes.append((self.sim.now, node.node_id, point))
            self.sim.call_soon(node.crash)
            # Never fires; the process dies suspended here.
            return Event(self.sim)
        return None
