"""Deterministic chaos campaigns over the recovery path.

The paper's availability claim (§5, §6.1) rests on recovery being
correct under *arbitrary* failure timing: FD false positives, failures
landing during recovery, and overlapping compute/memory/log-server
crashes. This package generates seeded multi-fault *schedules*, runs
each against the fuzz workload, and checks an end-of-run consistency
oracle — reusing the PILL sanitizer and the flight recorder for
attribution. Failing schedules are minimized with a delta-debugging
shrinker and emitted as replayable JSON artifacts.
"""

from repro.chaos.campaign import ChaosResult, ChaosRunner, run_schedule
from repro.chaos.oracle import OracleViolation, check_cluster
from repro.chaos.schedule import (
    ALL_CRASH_POINTS,
    FAMILIES,
    Fault,
    Schedule,
    generate_schedule,
)
from repro.chaos.shrink import shrink_schedule

__all__ = [
    "ALL_CRASH_POINTS",
    "FAMILIES",
    "Fault",
    "Schedule",
    "generate_schedule",
    "ChaosResult",
    "ChaosRunner",
    "run_schedule",
    "OracleViolation",
    "check_cluster",
    "shrink_schedule",
]
