"""Runs one chaos schedule against the fuzz workload and judges it.

The runner builds a cluster, arms every fault in the schedule
(including the *triggered* faults that watch recovery progress), drives
random traffic for the scheduled duration, then forces quiescence:
traffic stops, every armed fault is disarmed, the fabric and the
failure detector are healed, and the simulation runs until no recovery
is in flight and no transaction is mid-protocol. Only then does the
consistency oracle judge the final state — a cluster that *cannot*
reach quiescence (e.g. a recovery claim leaked forever) is itself a
violation (``CHAOS-QUIESCE``).

Everything is derived from the schedule's seed, so a result — including
its state fingerprint — replays bit-identically from the JSON artifact.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chaos.oracle import OracleViolation, check_cluster
from repro.chaos.schedule import COMPUTE_NODES, MEMORY_NODES, Schedule
from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.litmus.fuzzer import _FuzzWorkload

__all__ = [
    "ChaosResult",
    "ChaosRunner",
    "DEFAULT_FD_REDETECT_INTERVAL",
    "run_schedule",
]

# Wall-clock guards, in virtual seconds past the schedule's duration.
_QUIESCE_DEADLINE = 60e-3
# After quiescence, in-flight fire-and-forget verbs (lazy log
# invalidations, stray-lock notifications) land within a few RTTs.
_SETTLE_MARGIN = 2e-3

_FINGERPRINT_MASK = (1 << 61) - 1

# Default re-declaration quiet period for dead nodes whose recovery
# died mid-flight (tunable per run via ``repro chaos
# --fd-redetect-interval``; schedules with fd_redetect=False disable
# re-detection entirely regardless of the interval).
DEFAULT_FD_REDETECT_INTERVAL = 2e-3


def _stable_int(value) -> int:
    """Process-stable digest of a non-int slot value (builtin ``hash``
    of strings is PYTHONHASHSEED-dependent)."""
    return int.from_bytes(
        hashlib.blake2b(repr(value).encode(), digest_size=8).digest(), "big"
    )


@dataclass
class ChaosResult:
    """Outcome of one schedule run."""

    schedule: Schedule
    committed: int = 0
    crashes: int = 0
    recovery_kills: int = 0
    redetections: int = 0
    violations: List[OracleViolation] = field(default_factory=list)
    fingerprint: int = 0
    end_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"chaos[seed={self.schedule.seed} {self.schedule.family}/"
            f"{self.schedule.protocol}] committed={self.committed} "
            f"crashes={self.crashes} rc_kills={self.recovery_kills} "
            f"redetects={self.redetections} "
            f"fp={self.fingerprint:016x}  {verdict}"
        )


class ChaosRunner:
    """Builds a cluster, arms one schedule's faults, runs, judges."""

    def __init__(
        self,
        schedule: Schedule,
        sanitize: bool = False,
        fd_redetect_interval: float = DEFAULT_FD_REDETECT_INTERVAL,
        legacy_kernel: bool = False,
        legacy_engine: bool = False,
    ) -> None:
        self.schedule = schedule
        if fd_redetect_interval <= 0:
            fd_redetect_interval = None  # type: ignore[assignment]
        config = ClusterConfig(
            protocol=schedule.protocol,
            memory_nodes=MEMORY_NODES,
            compute_nodes=COMPUTE_NODES,
            coordinators_per_node=3,
            replication_degree=2,
            seed=schedule.seed,
            # Tight detection so recovery happens inside the short run.
            fd_timeout=1e-3,
            fd_heartbeat_interval=0.3e-3,
            fd_check_interval=0.15e-3,
            restart_failed_after=2e-3,
            # Re-declare a dead node whose recovery was killed mid-flight
            # (schedules isolating a bug in the restarted-recovery path
            # itself set fd_redetect=False to suppress the self-healing).
            fd_redetect_interval=(
                fd_redetect_interval if schedule.fd_redetect else None
            ),
            sanitize=sanitize,
            legacy_kernel=legacy_kernel,
            legacy_engine=legacy_engine,
        )
        self.cluster = Cluster(config, _FuzzWorkload(schedule.keys))
        self.history: List = []
        self._attach_history_sinks()
        self._baseline_loss = config.network.loss_probability
        self._baseline_jitter = config.network.jitter
        self._blackholed: List[int] = []
        self.recovery_kills = 0

    # -- fault arming --------------------------------------------------------

    def _arm(self) -> None:
        for fault in self.schedule.faults:
            applier = getattr(self, f"_arm_{fault.kind}", None)
            if applier is None:
                raise ValueError(f"unknown fault kind {fault.kind!r}")
            applier(fault)

    def _arm_crash_compute(self, fault) -> None:
        self.cluster.crash_compute(fault.node % COMPUTE_NODES, at=fault.at)

    def _arm_crash_memory(self, fault) -> None:
        self.cluster.crash_memory(fault.node % MEMORY_NODES, at=fault.at)

    def _arm_restore_memory(self, fault) -> None:
        node_id = fault.node % MEMORY_NODES
        self.cluster.sim.call_at(
            fault.at, lambda: self.cluster.restore_memory(node_id)
        )

    def _arm_crash_point(self, fault) -> None:
        self.cluster.injector.crash_on_point(
            fault.node % COMPUTE_NODES, fault.point, nth=fault.nth
        )

    def _arm_net_degrade(self, fault) -> None:
        network_config = self.cluster.config.network

        def degrade() -> None:
            network_config.loss_probability = fault.loss
            network_config.jitter = fault.jitter

        def restore() -> None:
            network_config.loss_probability = self._baseline_loss
            network_config.jitter = self._baseline_jitter

        self.cluster.sim.call_at(max(fault.at, 0.0), degrade)
        self.cluster.sim.call_at(max(fault.at, 0.0) + fault.after, restore)

    def _arm_fd_blackhole(self, fault) -> None:
        node_id = fault.node % COMPUTE_NODES
        self._blackholed.append(node_id)
        self.cluster.sim.call_at(
            fault.at, lambda: self.cluster.fd.blackhole("compute", node_id)
        )
        self.cluster.sim.call_at(
            fault.at + fault.after,
            lambda: self.cluster.fd.heal("compute", node_id),
        )

    def _arm_crash_recovery(self, fault) -> None:
        """Kill the recovery process for *node* mid-recovery, then
        re-trigger recovery after ``restart_after`` (the recovery
        coordinator itself crash-restarting, §3.2.3)."""
        sim = self.cluster.sim
        recovery = self.cluster.recovery
        node_id = fault.node % COMPUTE_NODES
        key = ("compute", node_id)

        def watcher():
            # Fine-grained poll: a compute recovery completes in tens
            # of microseconds, so a coarse poll would always miss it.
            deadline = self.schedule.duration + _QUIESCE_DEADLINE
            while key not in recovery._in_progress:
                if sim.now >= deadline:
                    return
                yield sim.timeout(2e-6)
            yield sim.timeout(fault.after)
            if not recovery.kill_recovery("compute", node_id):
                return
            self.recovery_kills += 1
            yield sim.timeout(fault.restart_after)
            node = self.cluster.compute_nodes[node_id]
            if not node.alive and key not in recovery._in_progress:
                recovery.handle_compute_failure(node)

        sim.process(watcher(), name=f"chaos-rc-kill-c{node_id}")

    def _arm_crash_memory_during_recovery(self, fault) -> None:
        """Crash a memory node while compute recovery for *node* is in
        flight — the fence/log-read window of §3.2.2."""
        sim = self.cluster.sim
        recovery = self.cluster.recovery
        node_id = fault.node % COMPUTE_NODES
        memory_id = (fault.memory_node or 0) % MEMORY_NODES
        key = ("compute", node_id)

        def watcher():
            deadline = self.schedule.duration + _QUIESCE_DEADLINE
            while key not in recovery._in_progress:
                if sim.now >= deadline:
                    return
                yield sim.timeout(2e-6)
            if fault.after:
                yield sim.timeout(fault.after)
            memory = self.cluster.memory_nodes[memory_id]
            if memory.alive:
                memory.crash()

        sim.process(watcher(), name=f"chaos-mem-kill-m{memory_id}")

    # -- run -----------------------------------------------------------------

    def _attach_history_sinks(self) -> None:
        for coordinator in self.cluster.all_coordinators():
            if coordinator.history_sink is None:
                coordinator.history_sink = self.history

    def _busy(self) -> bool:
        """True while recovery or a transaction is still in flight."""
        cluster = self.cluster
        if cluster.recovery._in_progress:
            return True
        for node in cluster.compute_nodes.values():
            if node.alive:
                for coordinator in node.coordinators:
                    if coordinator.engine.current_tx is not None:
                        return True
            else:
                # Crashed but not yet recovered: some of its ids are
                # still undetected or mid-recovery.
                if any(
                    coord_id not in cluster.id_allocator.failed
                    for coord_id in node.coordinator_ids()
                ):
                    return True
        for memory in cluster.memory_nodes.values():
            if not memory.alive and memory.node_id not in cluster.placement.down_nodes:
                return True  # crashed but reconfiguration hasn't run
        return False

    def _quiesce(self) -> Optional[OracleViolation]:
        """Stop traffic and faults, then drain recovery to a fixpoint."""
        cluster = self.cluster
        sim = cluster.sim
        # Disarm everything: no further crash plans fire, the fabric
        # and the detector heal, restarts come back without workers.
        cluster.injector.clear()
        cluster.config.network.loss_probability = self._baseline_loss
        cluster.config.network.jitter = self._baseline_jitter
        for node_id in self._blackholed:
            cluster.fd.heal("compute", node_id)
        cluster._run_coordinator_loops = False
        deadline = sim.now + _QUIESCE_DEADLINE
        while True:
            for node in cluster.compute_nodes.values():
                if node.alive:
                    node.pause()
            cluster.run(until=sim.now + 1e-3)
            self._attach_history_sinks()
            if not self._busy():
                return None
            if sim.now >= deadline:
                return OracleViolation(
                    "CHAOS-QUIESCE",
                    "cluster failed to quiesce within "
                    f"{_QUIESCE_DEADLINE * 1e3:.0f}ms: "
                    f"in_progress={sorted(cluster.recovery._in_progress)}",
                )

    def _fingerprint(self) -> int:
        """Order-independent-free digest of the final object state.

        Iterates tables/slots in a fixed order and folds integers only
        (``hash`` of ints is process-stable), so the same seed produces
        the same fingerprint in any interpreter session.
        """
        state = 0

        def fold(*values: int) -> None:
            nonlocal state
            for value in values:
                state = (state * 1000003 + value) & _FINGERPRINT_MASK

        cluster = self.cluster
        for spec in sorted(cluster.catalog.tables.values(), key=lambda s: s.table_id):
            slot_count = cluster.catalog.key_count(spec.table_id)
            for slot in range(slot_count):
                for node_id in sorted(cluster.memory_nodes):
                    memory = cluster.memory_nodes[node_id]
                    if not memory.alive:
                        continue
                    obj = memory.slot(spec.table_id, slot)
                    fold(
                        node_id,
                        obj.version,
                        int(obj.present),
                        obj.value if isinstance(obj.value, int) else _stable_int(obj.value),
                        obj.lock,
                    )
        fold(len(self.history))
        return state

    def run(self) -> ChaosResult:
        schedule = self.schedule
        cluster = self.cluster
        result = ChaosResult(schedule=schedule)
        self._arm()
        cluster.start()
        step = 0.5e-3
        now = 0.0
        while now < schedule.duration:
            now = min(now + step, schedule.duration)
            cluster.run(until=now)
            # Coordinators spawned by restarts join the history too.
            self._attach_history_sinks()
        quiesce_violation = self._quiesce()
        # Let fire-and-forget verbs still on the wire (lazy log
        # invalidations, stray-lock notifications) land before judging.
        cluster.run(until=cluster.sim.now + _SETTLE_MARGIN)
        result.end_time = cluster.sim.now
        result.committed = len(self.history)
        result.crashes = len(cluster.injector.crashes)
        result.recovery_kills = self.recovery_kills
        result.redetections = len(cluster.fd.redetections)
        if quiesce_violation is not None:
            result.violations.append(quiesce_violation)
        result.violations.extend(check_cluster(cluster, self.history))
        result.fingerprint = self._fingerprint()
        return result


def run_schedule(
    schedule: Schedule,
    sanitize: bool = False,
    fd_redetect_interval: float = DEFAULT_FD_REDETECT_INTERVAL,
) -> ChaosResult:
    """Build a fresh cluster and run *schedule* to a judged result."""
    return ChaosRunner(
        schedule, sanitize=sanitize, fd_redetect_interval=fd_redetect_interval
    ).run()
