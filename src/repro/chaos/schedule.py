"""Fault schedules: seeded multi-fault plans with a JSON round trip.

A *schedule* is a small, replayable description of everything a chaos
run injects: timed node crashes, crash-point plans, network
degradation windows, FD heartbeat partitions, and *triggered* faults
that fire relative to recovery progress (kill the recovery coordinator
mid-recovery, crash a memory node while another node's recovery is in
flight). Schedules are generated deterministically from a seed, one of
five fault families per seed, and serialize to JSON so a failing
schedule can be committed as a regression artifact and replayed
bit-identically.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import List, Optional

from repro.litmus.runner import CRASH_POINTS

__all__ = [
    "ALL_CRASH_POINTS",
    "FAMILIES",
    "COMPUTE_NODES",
    "MEMORY_NODES",
    "Fault",
    "Schedule",
    "generate_schedule",
]

# Campaign topology: 3 compute x 2 memory keeps a quorum of traffic
# alive under any single-family schedule while still allowing two
# overlapping compute failures.
COMPUTE_NODES = 3
MEMORY_NODES = 2

# The litmus crash points plus the interrupt-resolution boundaries
# added for chaos (§3.2.2 x §3.2.5 — crashing while resolving an
# interrupted attempt). The litmus list itself is left unchanged so
# existing seeded litmus runs stay bit-identical.
RECOVERY_CRASH_POINTS = (
    "recover_interrupted",
    "recover_drained",
    "recover_undo_written",
)
ALL_CRASH_POINTS = tuple(CRASH_POINTS) + RECOVERY_CRASH_POINTS

# The five fault families of the campaign; seed % 5 selects one so any
# contiguous seed bank of >= 5 seeds spans all of them.
FAMILIES = (
    "cascade",  # cascading coordinator (compute) crashes
    "recovery_crash",  # the node performing log recovery dies mid-recovery
    "overlap",  # overlapping compute + memory failures
    "logserver",  # log-server loss around the logging window
    "fd_false_positive",  # heartbeat partition + loss spike
)

_SCHEDULE_VERSION = 1


@dataclass
class Fault:
    """One injected fault.

    ``kind`` selects the interpretation of the other fields:

    * ``crash_compute`` / ``crash_memory`` — kill node ``node`` at
      virtual time ``at``.
    * ``restore_memory`` — stop-the-world re-replication of memory
      node ``node`` at ``at`` (§3.2.5).
    * ``crash_point`` — kill compute node ``node`` at the ``nth``
      invocation of protocol step ``point``.
    * ``net_degrade`` — from ``at`` for ``after`` seconds, set the
      fabric's loss probability to ``loss`` and jitter to ``jitter``.
    * ``fd_blackhole`` — from ``at`` for ``after`` seconds, drop
      compute node ``node``'s heartbeats at the failure detector (a
      deterministic FD false positive).
    * ``crash_recovery`` — once recovery for compute node ``node`` is
      in flight, wait ``after`` seconds, kill the recovery process,
      and re-trigger recovery ``restart_after`` seconds later (the
      recovery coordinator itself crash-restarting).
    * ``crash_memory_during_recovery`` — once recovery for compute
      node ``node`` is in flight, wait ``after`` seconds, then crash
      memory node ``memory_node`` (a log/fence server dying under the
      recovery that is using it).
    """

    kind: str
    at: float = 0.0
    node: int = 0
    point: Optional[str] = None
    nth: int = 1
    after: float = 0.0
    loss: float = 0.0
    jitter: float = 0.0
    memory_node: Optional[int] = None
    restart_after: float = 0.0


@dataclass
class Schedule:
    """A replayable chaos plan: topology seed, family, and faults."""

    seed: int
    family: str
    protocol: str = "pandora"
    duration: float = 12e-3
    keys: int = 24
    # Whether the cluster's FD re-declares a dead node whose recovery
    # died mid-flight (FailureDetector.redetect_interval). On by
    # default — it is how a killed recovery heals; artifacts that pin
    # a bug *in* the re-started recovery path set it to False so the
    # failure is isolated from the self-healing.
    fd_redetect: bool = True
    faults: List[Fault] = field(default_factory=list)

    # -- mutation (shrinker) -----------------------------------------------

    def without_fault(self, index: int) -> "Schedule":
        """A copy with fault *index* removed."""
        faults = [replace(fault) for i, fault in enumerate(self.faults) if i != index]
        return replace(self, faults=faults)

    def with_fault(self, index: int, **changes) -> "Schedule":
        """A copy with fields of fault *index* replaced."""
        faults = [
            replace(fault, **(changes if i == index else {}))
            for i, fault in enumerate(self.faults)
        ]
        return replace(self, faults=faults)

    # -- JSON round trip ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": _SCHEDULE_VERSION,
            "seed": self.seed,
            "family": self.family,
            "protocol": self.protocol,
            "duration": self.duration,
            "keys": self.keys,
            "fd_redetect": self.fd_redetect,
            "faults": [asdict(fault) for fault in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        version = data.get("version", _SCHEDULE_VERSION)
        if version != _SCHEDULE_VERSION:
            raise ValueError(f"unsupported schedule version {version}")
        return cls(
            seed=data["seed"],
            family=data["family"],
            protocol=data.get("protocol", "pandora"),
            duration=data.get("duration", 12e-3),
            keys=data.get("keys", 24),
            # Artifacts predating the field replay with re-detection on
            # (the campaign default they were minimized under... almost:
            # pre-redetect artifacts reproduce bugs whose fixes hold
            # with or without it, see tests/chaos/test_regressions.py).
            fd_redetect=data.get("fd_redetect", True),
            faults=[Fault(**fault) for fault in data.get("faults", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))


# -- generation ---------------------------------------------------------------


def _family_faults(family: str, rng: random.Random) -> List[Fault]:
    if family == "cascade":
        # Two compute nodes die close together: the second crash lands
        # while the first recovery may still be in flight, and the
        # survivors absorb two stray-lock notifications back to back.
        first, second = rng.sample(range(COMPUTE_NODES), 2)
        t1 = rng.uniform(2e-3, 4e-3)
        faults = [
            Fault(kind="crash_compute", node=first, at=t1),
            Fault(
                kind="crash_compute",
                node=second,
                at=t1 + rng.uniform(0.05e-3, 1.5e-3),
            ),
        ]
        if rng.random() < 0.5:
            third = next(
                n for n in range(COMPUTE_NODES) if n not in (first, second)
            )
            faults.append(
                Fault(
                    kind="crash_point",
                    node=third,
                    point=rng.choice(CRASH_POINTS),
                    nth=rng.randint(1, 12),
                )
            )
        return faults

    if family == "recovery_crash":
        # The recovery coordinator dies while recovering a crashed
        # node, restarts, and runs recovery over from scratch — every
        # step must be idempotent (§3.2.3).
        victim = rng.randrange(COMPUTE_NODES)
        return [
            Fault(kind="crash_compute", node=victim, at=rng.uniform(2e-3, 4e-3)),
            Fault(
                kind="crash_recovery",
                node=victim,
                # A compute recovery lasts ~30us of virtual time
                # (fence RPCs + f+1 log reads + truncation); the kill
                # delay must land inside that window.
                after=rng.uniform(2e-6, 28e-6),
                restart_after=rng.uniform(0.3e-3, 1e-3),
            ),
        ]

    if family == "overlap":
        # A compute node and a memory node fail in overlapping windows;
        # half the time the memory crash is *triggered* to land inside
        # the compute recovery (the fence/log-read window).
        victim = rng.randrange(COMPUTE_NODES)
        memory = rng.randrange(MEMORY_NODES)
        t1 = rng.uniform(2e-3, 4e-3)
        if rng.random() < 0.5:
            faults = [
                Fault(kind="crash_compute", node=victim, at=t1),
                Fault(
                    kind="crash_memory_during_recovery",
                    node=victim,
                    memory_node=memory,
                    after=rng.uniform(0.0, 25e-6),
                ),
            ]
        else:
            faults = [
                Fault(kind="crash_compute", node=victim, at=t1),
                Fault(
                    kind="crash_memory",
                    node=memory,
                    at=t1 + rng.uniform(-0.5e-3, 0.5e-3),
                ),
            ]
        faults.append(
            Fault(kind="restore_memory", node=memory, at=t1 + rng.uniform(4e-3, 6e-3))
        )
        return faults

    if family == "logserver":
        # A coordinator dies with valid log records outstanding, and a
        # log server holding one of the copies goes down around the
        # same time — recovery must be judged by the survivors and
        # restore must not resurrect the stale copies.
        victim = rng.randrange(COMPUTE_NODES)
        memory = rng.randrange(MEMORY_NODES)
        t1 = rng.uniform(2e-3, 4e-3)
        return [
            Fault(
                kind="crash_point",
                node=victim,
                point=rng.choice(("log_posted", "decision", "commit_posted")),
                nth=rng.randint(1, 8),
            ),
            Fault(kind="crash_memory", node=memory, at=t1),
            Fault(kind="restore_memory", node=memory, at=t1 + rng.uniform(4e-3, 6e-3)),
        ]

    if family == "fd_false_positive":
        # A healthy node's heartbeats are partitioned away until the
        # detector declares it failed (Cor1 must make this safe), with
        # a loss/jitter spike stressing everything else in parallel.
        victim = rng.randrange(COMPUTE_NODES)
        t1 = rng.uniform(1.5e-3, 3e-3)
        faults = [
            Fault(
                kind="fd_blackhole",
                node=victim,
                at=t1,
                after=rng.uniform(2e-3, 3e-3),
            )
        ]
        if rng.random() < 0.6:
            faults.append(
                Fault(
                    kind="net_degrade",
                    at=t1 + rng.uniform(-1e-3, 1e-3),
                    after=rng.uniform(1e-3, 3e-3),
                    loss=rng.uniform(0.2, 0.6),
                    jitter=rng.uniform(0.5e-6, 3e-6),
                )
            )
        return faults

    raise ValueError(f"unknown fault family {family!r}")


def generate_schedule(seed: int, protocol: str = "pandora") -> Schedule:
    """Deterministically generate one schedule for *seed*.

    ``seed % 5`` selects the family, so a contiguous seed bank covers
    all five. Every schedule additionally carries one crash-point
    fault cycling through :data:`ALL_CRASH_POINTS` (including the
    interrupt-resolution points), so a bank of
    ``len(ALL_CRASH_POINTS)`` seeds exercises every protocol boundary.
    """
    family = FAMILIES[seed % len(FAMILIES)]
    rng = random.Random(0x9E3779B1 * (seed + 1))
    faults = _family_faults(family, rng)
    extra_point = ALL_CRASH_POINTS[seed % len(ALL_CRASH_POINTS)]
    faults.append(
        Fault(
            kind="crash_point",
            node=rng.randrange(COMPUTE_NODES),
            point=extra_point,
            nth=rng.randint(1, 10),
        )
    )
    return Schedule(seed=seed, family=family, protocol=protocol, faults=faults)
