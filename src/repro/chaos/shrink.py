"""Delta-debugging shrinker for failing chaos schedules.

A generated schedule carries several faults; usually only one or two
of them are needed to reproduce a bug. The shrinker greedily removes
one fault at a time, re-running the schedule after each removal, and
keeps any removal that still fails — restarting the scan after every
success so removals that only become possible together are found. The
fixpoint is a locally-minimal schedule: removing any single remaining
fault makes the failure disappear. That is the artifact worth
committing as a regression test.

Determinism makes this sound: the same schedule always produces the
same result, so "still fails" is a property of the schedule, not of
the run.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.chaos.schedule import Schedule

__all__ = ["shrink_schedule"]


def _default_fails(schedule: Schedule) -> bool:
    from repro.chaos.campaign import run_schedule

    return not run_schedule(schedule).ok


def shrink_schedule(
    schedule: Schedule,
    fails: Optional[Callable[[Schedule], bool]] = None,
    max_runs: int = 64,
) -> Tuple[Schedule, int]:
    """Minimize a failing schedule to the fewest faults that still fail.

    *fails* decides whether a candidate still reproduces (defaults to
    "the campaign reports any violation"). Returns the minimized
    schedule and the number of candidate runs spent. The input schedule
    itself is never re-run — callers invoke the shrinker because they
    already saw it fail.
    """
    if fails is None:
        fails = _default_fails
    current = schedule
    runs = 0
    index = 0
    while index < len(current.faults) and runs < max_runs:
        candidate = current.without_fault(index)
        if not candidate.faults:
            index += 1
            continue
        runs += 1
        if fails(candidate):
            current = candidate
            index = 0  # restart: earlier faults may now be removable
        else:
            index += 1
    return current, runs
