"""Delta-debugging shrinker for failing chaos schedules.

A generated schedule carries several faults; usually only one or two
of them are needed to reproduce a bug. The shrinker greedily removes
one fault at a time, re-running the schedule after each removal, and
keeps any removal that still fails — restarting the scan after every
success so removals that only become possible together are found. The
fixpoint is a locally-minimal schedule: removing any single remaining
fault makes the failure disappear.

A second pass then minimizes the *fields* of the surviving faults:
trigger delays (``after``) and recovery re-trigger delays
(``restart_after``) are zeroed, and fault times (``at``) are rounded
to coarse grids — each simplification kept only while the schedule
still fails. Generated schedules carry random-looking constants
(``at=0.0031874…``); the minimized artifact should say ``at=0.003``
when the millisecond is all the bug needs, so a reader can tell
load-bearing timing from generator noise. That doubly-minimal
schedule is the artifact worth committing as a regression test.

Determinism makes this sound: the same schedule always produces the
same result, so "still fails" is a property of the schedule, not of
the run.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.chaos.schedule import Fault, Schedule

__all__ = ["shrink_schedule"]

# at-rounding grids, coarsest first (1 ms, then 0.1 ms).
_TIME_GRIDS = (1e-3, 1e-4)


def _default_fails(schedule: Schedule) -> bool:
    from repro.chaos.campaign import run_schedule

    return not run_schedule(schedule).ok


def shrink_schedule(
    schedule: Schedule,
    fails: Optional[Callable[[Schedule], bool]] = None,
    max_runs: int = 64,
) -> Tuple[Schedule, int]:
    """Minimize a failing schedule: fewest faults, then simplest fields.

    *fails* decides whether a candidate still reproduces (defaults to
    "the campaign reports any violation"). Returns the minimized
    schedule and the number of candidate runs spent (both passes share
    the ``max_runs`` budget; deletions spend first — a removed fault
    simplifies more than any field tweak). The input schedule itself
    is never re-run — callers invoke the shrinker because they already
    saw it fail.
    """
    if fails is None:
        fails = _default_fails
    current = schedule
    runs = 0
    index = 0
    while index < len(current.faults) and runs < max_runs:
        candidate = current.without_fault(index)
        if not candidate.faults:
            index += 1
            continue
        runs += 1
        if fails(candidate):
            current = candidate
            index = 0  # restart: earlier faults may now be removable
        else:
            index += 1
    current, runs = _minimize_fields(current, fails, runs, max_runs)
    return current, runs


def _field_candidates(fault: Fault) -> Iterator[Dict[str, float]]:
    """Single-field simplifications, most aggressive first."""
    if fault.after != 0.0:
        yield {"after": 0.0}
    if fault.restart_after != 0.0:
        yield {"restart_after": 0.0}
    for grid in _TIME_GRIDS:
        rounded = round(fault.at / grid) * grid
        if rounded != fault.at:
            yield {"at": rounded}


def _minimize_fields(
    current: Schedule,
    fails: Callable[[Schedule], bool],
    runs: int,
    max_runs: int,
) -> Tuple[Schedule, int]:
    """Greedy per-fault field simplification to a fixpoint."""
    progress = True
    while progress and runs < max_runs:
        progress = False
        for index in range(len(current.faults)):
            for changes in _field_candidates(current.faults[index]):
                if runs >= max_runs:
                    return current, runs
                candidate = current.with_fault(index, **changes)
                runs += 1
                if fails(candidate):
                    current = candidate
                    progress = True
                    # The fault changed under us; re-enumerate its
                    # remaining candidates on the next fixpoint pass.
                    break
    return current, runs
