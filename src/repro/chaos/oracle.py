"""End-of-run consistency oracle for chaos campaigns.

After a schedule runs and the cluster quiesces (no traffic, no
recovery in flight), these invariants must hold regardless of how many
faults overlapped:

* **CHAOS-REPLICA** — every live replica of every object agrees on
  (version, value, present): log recovery / interrupt resolution left
  no half-applied write-set behind (Cor2/Cor3).
* **CHAOS-DURABLE** — no committed transaction's write was lost: the
  final version of each object on every live replica is at least the
  highest version installed by a client-acknowledged commit.
* **CHAOS-LOCK** — no leaked locks: a locked slot after quiescence is
  legal only under PILL and only when its owner is a failed
  coordinator id (a NotLogged-Stray lock awaiting lazy stealing,
  §3.1.2); anything else is a lock that survived recovery.
* **CHAOS-LOG** — log-truncation held: no valid log record remains
  for a failed coordinator id (recovery truncates before notifying,
  §3.2.3), and none for a live coordinator either (commit/abort
  invalidate their records).
* **CHAOS-BITSET** — failed-id propagation: every live, unfenced
  compute node's failed-ids bitset contains every failed id, and no
  live coordinator runs under an id marked failed.
* **CHAOS-RECYCLE** — recycler hygiene: no id is simultaneously
  failed and recycled, and no lock is owned by a recycled id.
* **CHAOS-SERIAL** — the committed history (client-acknowledged
  transactions) is strictly serializable.
* **CHAOS-SANITIZE** — the PILL sanitizer recorded no protocol
  violations (only checked when the run wired a sanitizer in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.protocol.locks import is_locked, owner_of

__all__ = ["OracleViolation", "check_cluster"]


@dataclass
class OracleViolation:
    """One invariant violation found after quiescence."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.detail}"


def _live_replicas(cluster, table_id: int, slot: int) -> List[int]:
    placement = cluster.placement
    down = placement.down_nodes
    return [
        node_id
        for node_id in placement.replicas(table_id, slot)
        if node_id not in down and cluster.memory_nodes[node_id].alive
    ]


def _eligible_compute_nodes(cluster) -> List:
    """Live compute nodes that are full cluster members.

    A falsely-suspected node that is alive but fenced (links revoked,
    ids marked failed) is *not* a member — it can never touch memory
    again and is waiting to be crash-restarted.
    """
    nodes = []
    for node in cluster.compute_nodes.values():
        if not node.alive or node.fenced:
            continue
        revoked = any(
            memory.alive and memory.is_revoked(node.node_id)
            for memory in cluster.memory_nodes.values()
        )
        if revoked:
            continue
        nodes.append(node)
    return nodes


def check_cluster(cluster, history: Optional[list] = None) -> List[OracleViolation]:
    """Run every invariant against a quiesced cluster."""
    violations: List[OracleViolation] = []
    # Owner-attributable lock words (PILL proper, and vote1pc's PILL
    # words): a dead owner's lock is a stealable stray, not a leak.
    pill = cluster.config.recovery_mode in ("pill", "vote")
    failed = cluster.id_allocator.failed
    recycled = set(cluster.id_allocator.recycled_ids)

    # -- replica agreement + leaked locks + recycled-lock scan -------------
    for spec in cluster.catalog.tables.values():
        table_id = spec.table_id
        slot_count = cluster.catalog.key_count(table_id)
        for slot in range(slot_count):
            replicas = _live_replicas(cluster, table_id, slot)
            states = []
            for node_id in replicas:
                obj = cluster.memory_nodes[node_id].slot(table_id, slot)
                states.append((node_id, obj.version, obj.value, obj.present))
                if is_locked(obj.lock):
                    owner = owner_of(obj.lock)
                    if owner in recycled:
                        violations.append(
                            OracleViolation(
                                "CHAOS-RECYCLE",
                                f"lock on m{node_id} {table_id}:{slot} owned by "
                                f"recycled id {owner}",
                            )
                        )
                    elif not (pill and owner in failed):
                        violations.append(
                            OracleViolation(
                                "CHAOS-LOCK",
                                f"leaked lock on m{node_id} {table_id}:{slot} "
                                f"owner={owner} (not a stealable stray)",
                            )
                        )
            if len(states) > 1:
                _, version0, value0, present0 = states[0]
                for node_id, version, value, present in states[1:]:
                    if (version, value, present) != (version0, value0, present0):
                        violations.append(
                            OracleViolation(
                                "CHAOS-REPLICA",
                                f"replica divergence {table_id}:{slot}: "
                                f"m{states[0][0]}=(v{version0},{value0!r},{present0}) "
                                f"vs m{node_id}=(v{version},{value!r},{present})",
                            )
                        )
                        break

    # -- durability of acknowledged commits --------------------------------
    if history:
        committed_max: Dict[Tuple[int, int], int] = {}
        for _txn_id, _time, _reads, _rmw, writes in history:
            for address, version in writes.items():
                if version > committed_max.get(address, -1):
                    committed_max[address] = version
        for (table_id, slot), version in committed_max.items():
            for node_id in _live_replicas(cluster, table_id, slot):
                obj = cluster.memory_nodes[node_id].slot(table_id, slot)
                if obj.version < version:
                    violations.append(
                        OracleViolation(
                            "CHAOS-DURABLE",
                            f"committed v{version} of {table_id}:{slot} lost on "
                            f"m{node_id} (final v{obj.version})",
                        )
                    )

    # -- log-truncation idempotence ----------------------------------------
    live_coord_ids = {
        coordinator.coord_id
        for node in cluster.compute_nodes.values()
        if node.alive
        for coordinator in node.coordinators
    }
    for memory in cluster.memory_nodes.values():
        if not memory.alive:
            continue
        for coord_id, region in memory.log_regions.items():
            valid = region.valid_records()
            if not valid:
                continue
            if coord_id in failed:
                violations.append(
                    OracleViolation(
                        "CHAOS-LOG",
                        f"{len(valid)} valid record(s) for failed coord "
                        f"{coord_id} on m{memory.node_id} (truncation miss)",
                    )
                )
            elif coord_id in live_coord_ids:
                violations.append(
                    OracleViolation(
                        "CHAOS-LOG",
                        f"{len(valid)} orphan record(s) for live coord "
                        f"{coord_id} on m{memory.node_id}",
                    )
                )

    # -- failed-id bitset propagation --------------------------------------
    failed_ids = set(cluster.id_allocator.failed_ids())
    for node in _eligible_compute_nodes(cluster):
        missing = [fid for fid in failed_ids if fid not in node.failed_ids]
        if missing:
            violations.append(
                OracleViolation(
                    "CHAOS-BITSET",
                    f"c{node.node_id} missing failed ids {missing[:8]}",
                )
            )
        stale = [
            coordinator.coord_id
            for coordinator in node.coordinators
            if coordinator.coord_id in failed
        ]
        if stale:
            violations.append(
                OracleViolation(
                    "CHAOS-BITSET",
                    f"c{node.node_id} runs live coordinators under failed "
                    f"ids {stale[:8]}",
                )
            )

    # -- recycler hygiene ---------------------------------------------------
    both = [fid for fid in recycled if fid in failed]
    if both:
        violations.append(
            OracleViolation(
                "CHAOS-RECYCLE",
                f"ids simultaneously failed and recycled: {both[:8]}",
            )
        )

    # -- history serializability --------------------------------------------
    if history:
        from repro.litmus.checker import SerializabilityChecker

        checker = SerializabilityChecker(history)
        if not checker.is_serializable():
            violations.append(
                OracleViolation(
                    "CHAOS-SERIAL",
                    f"committed history has a cycle: {checker.find_cycle()[:6]}",
                )
            )

    # -- sanitizer ----------------------------------------------------------
    sanitizer = getattr(cluster, "sanitizer", None)
    if sanitizer is not None:
        for violation in sanitizer.violations:
            violations.append(
                OracleViolation(
                    "CHAOS-SANITIZE", f"[{violation.code}] {violation.message}"
                )
            )

    return violations
