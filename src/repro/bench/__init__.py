"""Benchmark harness: experiment runners for every table and figure."""

from repro.bench.harness import (
    FailoverResult,
    RecoveryLatencyResult,
    SteadyStateResult,
    default_config,
    run_failover,
    run_mttf,
    run_recovery_latency,
    run_steady_state,
)
from repro.bench.kernelperf import (
    DEFAULT_FLEETS,
    FleetSpec,
    KernelPerfResult,
    compare_to_baseline,
    run_fleet,
    run_suite,
    suite_payload,
)
from repro.bench.report import format_series, format_table, write_report

__all__ = [
    "DEFAULT_FLEETS",
    "FailoverResult",
    "FleetSpec",
    "KernelPerfResult",
    "RecoveryLatencyResult",
    "SteadyStateResult",
    "compare_to_baseline",
    "default_config",
    "format_series",
    "format_table",
    "run_failover",
    "run_fleet",
    "run_mttf",
    "run_recovery_latency",
    "run_steady_state",
    "run_suite",
    "suite_payload",
    "write_report",
]
