"""Benchmark harness: experiment runners for every table and figure."""

from repro.bench.harness import (
    FailoverResult,
    RecoveryLatencyResult,
    SteadyStateResult,
    default_config,
    run_failover,
    run_mttf,
    run_recovery_latency,
    run_steady_state,
)
from repro.bench.report import format_series, format_table, write_report

__all__ = [
    "FailoverResult",
    "RecoveryLatencyResult",
    "SteadyStateResult",
    "default_config",
    "format_series",
    "format_table",
    "run_failover",
    "run_mttf",
    "run_recovery_latency",
    "run_steady_state",
    "write_report",
]
