"""Kernel raw-speed benchmark: events/sec and wall-µs/event.

Everything the protocol benchmarks measure is *virtual* time; this
module measures the only number virtual time cannot see — how fast the
host CPU turns the event heap. It sweeps the fleet-scale axis the
ROADMAP targets (coordinator count × key-space size), reports committed
``BENCH_KERNEL.json`` snapshots next to the protocol snapshots, and
gives CI a floor to gate kernel-speed regressions against, exactly the
way protocol regressions are already gated.

Methodology: each fleet is built fresh per repeat and the wall clock
brackets ``cluster.run`` only (construction, schema load, and reporting
are excluded — they are O(keys), not O(events), and would drown the
dispatch-loop signal on large key spaces). The *best* of ``repeats``
wall times is reported: wall-clock minima are the standard way to
suppress scheduler/GC noise on shared runners, and kernel-speed
regressions move the minimum just as surely as the mean. Step counts
are purely virtual and must be identical run-to-run — a changed
``steps`` against the committed baseline means simulated *behaviour*
changed, which is a different bug than slowness and is reported
separately.

Wall-clock reads live outside the simulation (SIM001-exempt): nothing
here feeds a measurement back into simulated behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns  # simlint: disable=SIM001
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.harness import default_config
from repro.bench.report import format_table
from repro.cluster.builder import Cluster
from repro.workloads import MicroBenchmark

__all__ = [
    "FleetSpec",
    "KernelPerfResult",
    "DEFAULT_FLEETS",
    "SMOKE_FLEET",
    "DEFAULT_TOLERANCE",
    "SNAPSHOT_SCHEMA",
    "run_fleet",
    "run_suite",
    "suite_payload",
    "compare_to_baseline",
    "format_suite",
]

#: Snapshot format marker (bump on incompatible payload changes).
SNAPSHOT_SCHEMA = "kernel-perf/1"

#: Allowed fractional events/sec drop vs the committed baseline. ±25%
#: absorbs runner noise (CI machines differ run to run); a real kernel
#: regression — an accidental O(n) scan in the dispatch loop, say —
#: moves events/sec far more than that.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class FleetSpec:
    """One point on the fleet-scale axis (coordinators × key space)."""

    name: str
    compute_nodes: int
    coordinators_per_node: int
    keys: int
    #: Virtual seconds to simulate (after which the run is cut off).
    duration: float = 2e-3

    @property
    def coordinators(self) -> int:
        return self.compute_nodes * self.coordinators_per_node


#: The committed sweep: small / medium / large along both axes. The
#: virtual durations are sized so each repeat processes ~1e5 kernel
#: steps — enough for a stable events/sec figure while keeping the
#: whole 3-repeat sweep within a couple of minutes of CI wall time.
DEFAULT_FLEETS = (
    FleetSpec("2x8-1k", compute_nodes=2, coordinators_per_node=8, keys=1_000),
    FleetSpec(
        "2x32-10k",
        compute_nodes=2,
        coordinators_per_node=32,
        keys=10_000,
        duration=1e-3,
    ),
    FleetSpec(
        "4x64-100k",
        compute_nodes=4,
        coordinators_per_node=64,
        keys=100_000,
        duration=0.25e-3,
    ),
)

#: The 100x-scale smoke fleet: 1024 coordinators (16 compute nodes x 64
#: coordinators). Not part of the committed sweep — CI runs it with
#: ``repeats=1`` and checks only that it completes and reproduces its
#: step count (steps-only: a 1024-coordinator build is too slow-varying
#: on shared runners for a meaningful wall-clock gate).
SMOKE_FLEET = FleetSpec(
    "16x64-smoke",
    compute_nodes=16,
    coordinators_per_node=64,
    keys=100_000,
    duration=0.1e-3,
)


@dataclass
class KernelPerfResult:
    """Measured kernel speed for one fleet."""

    fleet: str
    coordinators: int
    keys: int
    virtual_duration: float
    steps: int
    wall_seconds: float  # best-of-repeats wall time of cluster.run
    repeats: int

    @property
    def events_per_sec(self) -> float:
        return self.steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def wall_us_per_event(self) -> float:
        return 1e6 * self.wall_seconds / self.steps if self.steps else 0.0


def _build_cluster(spec: FleetSpec, seed: int, profiler=None) -> Cluster:
    config = default_config(
        compute_nodes=spec.compute_nodes,
        coordinators_per_node=spec.coordinators_per_node,
        seed=seed,
    )
    workload = MicroBenchmark(num_keys=spec.keys, write_ratio=1.0)
    return Cluster(config, workload, profiler=profiler)


def run_fleet(
    spec: FleetSpec,
    repeats: int = 3,
    seed: int = 42,
    profiler=None,
) -> KernelPerfResult:
    """Measure one fleet; wall time is best-of-*repeats* around run().

    *profiler* (an enabled KernelProfiler) attaches to the **last**
    repeat only, so the reported timing repeats stay unperturbed while
    `repro perf --bench --profile` still gets attribution data.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best_ns: Optional[int] = None
    steps = 0
    for repeat in range(repeats):
        attach = profiler if repeat == repeats - 1 else None
        cluster = _build_cluster(spec, seed, profiler=attach)
        cluster.start()
        started = perf_counter_ns()  # simlint: disable=SIM001
        cluster.run(until=spec.duration)
        elapsed = perf_counter_ns() - started  # simlint: disable=SIM001
        if attach is None and (best_ns is None or elapsed < best_ns):
            best_ns = elapsed
        if steps and cluster.sim.processed_events != steps:
            raise AssertionError(
                f"non-deterministic step count for fleet {spec.name!r}: "
                f"{steps} then {cluster.sim.processed_events}"
            )
        steps = cluster.sim.processed_events
    if best_ns is None:
        # Single profiled repeat: fall back to its (perturbed) timing.
        best_ns = elapsed
    return KernelPerfResult(
        fleet=spec.name,
        coordinators=spec.coordinators,
        keys=spec.keys,
        virtual_duration=spec.duration,
        steps=steps,
        wall_seconds=best_ns / 1e9,
        repeats=repeats,
    )


def run_suite(
    fleets: Sequence[FleetSpec] = DEFAULT_FLEETS,
    repeats: int = 3,
    seed: int = 42,
) -> List[KernelPerfResult]:
    """Run every fleet in order; returns one result per fleet."""
    return [run_fleet(spec, repeats=repeats, seed=seed) for spec in fleets]


def suite_payload(
    results: Sequence[KernelPerfResult], tolerance: float = DEFAULT_TOLERANCE
) -> Dict[str, Any]:
    """The ``BENCH_KERNEL.json`` payload (see docs/OBSERVABILITY.md)."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "tolerance": tolerance,
        "fleets": {
            result.fleet: {
                "coordinators": result.coordinators,
                "keys": result.keys,
                "virtual_duration_s": result.virtual_duration,
                "steps": result.steps,
                "events_per_sec": round(result.events_per_sec, 1),
                "wall_us_per_event": round(result.wall_us_per_event, 4),
                "repeats": result.repeats,
            }
            for result in results
        },
    }


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regression check; returns failure messages (empty = pass).

    Fails when a baseline fleet is missing from *current* or its
    events/sec fell below ``baseline * (1 - tolerance)``. Faster runs
    never fail (improvements are re-baselined by committing the new
    snapshot). A changed virtual ``steps`` count is also reported: the
    benchmark is seeded, so steps must reproduce exactly — a drift
    means simulated behaviour changed underneath the benchmark and the
    baseline needs regenerating *with review*.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    failures = []
    current_fleets = current.get("fleets", {})
    for name, base in baseline.get("fleets", {}).items():
        entry = current_fleets.get(name)
        if entry is None:
            failures.append(f"fleet {name!r}: missing from current run")
            continue
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if entry["events_per_sec"] < floor:
            failures.append(
                f"fleet {name!r}: {entry['events_per_sec']:,.0f} events/sec "
                f"< floor {floor:,.0f} "
                f"(baseline {base['events_per_sec']:,.0f}, "
                f"tolerance {tolerance:.0%})"
            )
        if entry.get("steps") != base.get("steps"):
            failures.append(
                f"fleet {name!r}: virtual step count changed "
                f"{base.get('steps')} -> {entry.get('steps')} "
                "(seeded behaviour drift; regenerate the baseline "
                "deliberately)"
            )
    return failures


def format_suite(results: Sequence[KernelPerfResult]) -> str:
    """Human-readable sweep table (`repro perf --bench`)."""
    rows = [
        (
            result.fleet,
            result.coordinators,
            result.keys,
            result.steps,
            f"{result.events_per_sec:,.0f}",
            f"{result.wall_us_per_event:.2f}",
            f"{result.wall_seconds * 1e3:.1f}",
        )
        for result in results
    ]
    return format_table(
        "kernel speed sweep (coordinators x key space)",
        ["fleet", "coords", "keys", "steps", "events/sec", "us/event", "wall (ms)"],
        rows,
        note="wall time: best of N repeats around cluster.run() only; "
        "steps are virtual and must reproduce exactly per seed.",
    )
