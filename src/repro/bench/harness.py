"""Experiment runners behind every reproduced table and figure.

Each runner builds a fresh simulated deployment, drives it for a span
of *virtual* time, and returns plain result objects the benchmark files
format into the paper's rows/series. Scale note: coordinator counts
and run lengths are reduced relative to the paper's testbed (which
sustains ~0.9 MTps for tens of seconds) so that each experiment
simulates in seconds of wall time; EXPERIMENTS.md documents the
mapping. Shapes — ratios, drops, recovery behaviour — are what these
runners reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.faults.mttf import MttfProcess

__all__ = [
    "default_config",
    "SteadyStateResult",
    "FailoverResult",
    "RecoveryLatencyResult",
    "run_steady_state",
    "run_failover",
    "run_recovery_latency",
    "run_mttf",
]


def default_config(**overrides) -> ClusterConfig:
    """The benchmark topology: 2 memory + 2 compute nodes, f+1 = 2,
    plus the dedicated FD/recovery server — the paper's five-machine
    setup (§4.1), with detection parameters matched to §6 (5 ms FD
    timeout)."""
    defaults = dict(
        memory_nodes=2,
        compute_nodes=2,
        coordinators_per_node=16,
        replication_degree=2,
        protocol="pandora",
        fd_timeout=5e-3,
        fd_heartbeat_interval=1e-3,
        fd_check_interval=0.5e-3,
        throughput_window=2e-3,
        seed=42,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@dataclass
class SteadyStateResult:
    protocol: str
    workload: str
    duration: float
    throughput: float  # committed txns / second (simulated)
    commits: int
    aborts: int
    abort_rate: float
    locks_stolen: int
    p50_latency: float
    p99_latency: float

    def row(self) -> str:
        return (
            f"{self.protocol:10s} {self.workload:12s} "
            f"{self.throughput / 1e6:8.3f} Mtps  commits={self.commits:8d} "
            f"abort%={100 * self.abort_rate:5.1f}  p50={self.p50_latency * 1e6:6.1f}us "
            f"p99={self.p99_latency * 1e6:7.1f}us"
        )


@dataclass
class FailoverResult:
    protocol: str
    workload: str
    crash_kind: str
    crash_at: float
    series: List[Tuple[float, float]]
    pre_rate: float
    during_rate: float
    post_rate: float
    recovery_records: list = field(default_factory=list)

    @property
    def during_over_pre(self) -> float:
        return self.during_rate / self.pre_rate if self.pre_rate else 0.0

    @property
    def post_over_pre(self) -> float:
        return self.post_rate / self.pre_rate if self.pre_rate else 0.0


@dataclass
class RecoveryLatencyResult:
    workload: str
    coordinators: int
    latency: float  # log-recovery step latency (seconds)


def _check_sanitizer(cluster: Cluster) -> None:
    """Surface collected PILL violations after a sanitized run."""
    sanitizer = getattr(cluster, "sanitizer", None)
    if sanitizer is not None and sanitizer.violations:
        # Each violation is a structured AssertionError with the verb
        # timeline attached; re-raising the first is the loud path the
        # CLI/CI rely on.
        raise sanitizer.violations[0]


def run_steady_state(
    workload_factory: Callable[[], object],
    protocol: str = "pandora",
    duration: float = 40e-3,
    warmup: float = 5e-3,
    config: Optional[ClusterConfig] = None,
    obs=None,
    profiler=None,
    **config_overrides,
) -> SteadyStateResult:
    """Failure-free throughput over *duration* of simulated time."""
    cfg = config or default_config(protocol=protocol, **config_overrides)
    workload = workload_factory()
    cluster = Cluster(cfg, workload, obs=obs, profiler=profiler)
    cluster.start()
    cluster.run(until=warmup + duration)
    _check_sanitizer(cluster)
    if obs is not None:
        obs.sample_kernel(cluster.sim)
    stats = cluster.aggregate_stats()
    throughput = cluster.timeline.rate_between(warmup, warmup + duration)
    attempts = stats.commits + stats.aborts
    return SteadyStateResult(
        protocol=protocol,
        workload=workload.name,
        duration=duration,
        throughput=throughput,
        commits=stats.commits,
        aborts=stats.aborts,
        abort_rate=stats.aborts / attempts if attempts else 0.0,
        locks_stolen=stats.locks_stolen,
        p50_latency=stats.latency.percentile(50),
        p99_latency=stats.latency.percentile(99),
    )


def run_failover(
    workload_factory: Callable[[], object],
    protocol: str = "pandora",
    crash_kind: str = "compute",
    crash_at: float = 20e-3,
    duration: float = 60e-3,
    reuse_resources: bool = False,
    restart_after: float = 10e-3,
    config: Optional[ClusterConfig] = None,
    obs=None,
    **config_overrides,
) -> FailoverResult:
    """Crash one node mid-run and record the throughput timeline.

    ``reuse_resources=True`` restarts the crashed compute node shortly
    after recovery (the paper's "failed resources reused" curve,
    §6.4); memory crashes exercise the §3.2.5 reconfiguration path.
    """
    if crash_kind not in ("compute", "memory"):
        raise ValueError(f"unknown crash kind {crash_kind!r}")
    cfg = config or default_config(protocol=protocol, **config_overrides)
    if reuse_resources:
        cfg.restart_failed_after = restart_after
    if crash_kind == "memory" and cfg.memory_nodes < 3:
        # Keep f live replicas after the crash.
        cfg.memory_nodes = 3
    workload = workload_factory()
    cluster = Cluster(cfg, workload, obs=obs)
    cluster.start()
    if crash_kind == "compute":
        cluster.crash_compute(0, at=crash_at)
    else:
        cluster.crash_memory(0, at=crash_at)
    cluster.run(until=duration)
    _check_sanitizer(cluster)
    if obs is not None:
        obs.sample_kernel(cluster.sim)

    window = cfg.throughput_window
    pre = cluster.timeline.rate_between(5e-3, crash_at - window)
    during = cluster.timeline.rate_between(crash_at, min(crash_at + 15e-3, duration))
    post = cluster.timeline.rate_between(min(crash_at + 20e-3, duration - window), duration)
    return FailoverResult(
        protocol=protocol,
        workload=workload.name,
        crash_kind=crash_kind,
        crash_at=crash_at,
        series=cluster.timeline.series(0.0, duration),
        pre_rate=pre,
        during_rate=during,
        post_rate=post,
        recovery_records=list(cluster.recovery.records),
    )


def run_recovery_latency(
    workload_factory: Callable[[], object],
    coordinators_per_node: int,
    protocol: str = "pandora",
    crash_at: float = 15e-3,
    config: Optional[ClusterConfig] = None,
    obs=None,
    **config_overrides,
) -> RecoveryLatencyResult:
    """Table 2: log-recovery latency vs outstanding coordinators."""
    cfg = config or default_config(
        protocol=protocol,
        coordinators_per_node=coordinators_per_node,
        **config_overrides,
    )
    workload = workload_factory()
    cluster = Cluster(cfg, workload, obs=obs)
    cluster.start()
    cluster.crash_compute(0, at=crash_at)
    # Give detection + recovery ample time; scan recovery needs more.
    horizon = crash_at + (0.4 if protocol in ("baseline", "ford") else 30e-3)
    cluster.run(until=horizon)
    if obs is not None:
        obs.sample_kernel(cluster.sim)
    records = [r for r in cluster.recovery.records if r.kind == "compute"]
    if not records:
        raise RuntimeError("recovery never ran — horizon too short?")
    return RecoveryLatencyResult(
        workload=workload.name,
        coordinators=coordinators_per_node,
        latency=records[0].log_recovery_latency,
    )


def run_mttf(
    workload_factory: Callable[[], object],
    mttf: Optional[float],
    protocol: str = "pandora",
    duration: float = 60e-3,
    repair_time: float = 2e-3,
    config: Optional[ClusterConfig] = None,
    **config_overrides,
) -> SteadyStateResult:
    """Fig 7: steady-state throughput while crashing/restoring half of
    the coordinators every ``mttf`` seconds (None = no failures)."""
    cfg = config or default_config(protocol=protocol, **config_overrides)
    workload = workload_factory()
    cluster = Cluster(cfg, workload)
    cluster.start()
    mttf_process = None
    if mttf is not None:
        # Crash/restore one of the two compute nodes = half of the
        # coordinators, as in §6.2.
        mttf_process = MttfProcess(
            cluster.sim,
            cluster.compute_nodes[0],
            restart=cluster.restart_compute,
            mttf=mttf,
            repair_time=repair_time,
            rng=random.Random(cfg.seed + 99),
        )
        mttf_process.start()
    cluster.run(until=duration)
    if mttf_process is not None:
        mttf_process.stop()
    stats = cluster.aggregate_stats()
    throughput = cluster.timeline.rate_between(5e-3, duration)
    attempts = stats.commits + stats.aborts
    return SteadyStateResult(
        protocol=protocol,
        workload=workload.name,
        duration=duration,
        throughput=throughput,
        commits=stats.commits,
        aborts=stats.aborts,
        abort_rate=stats.aborts / attempts if attempts else 0.0,
        locks_stolen=stats.locks_stolen,
        p50_latency=stats.latency.percentile(50),
        p99_latency=stats.latency.percentile(99),
    )
