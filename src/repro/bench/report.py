"""Report formatting: paper-vs-measured tables and timeline series.

Every benchmark writes a plain-text report under ``benchmarks/results/``
so the regenerated rows/series survive pytest's output capture; the
same text is printed for ``-s`` runs. EXPERIMENTS.md indexes the
reports against the paper's tables and figures.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "write_report", "results_dir"]


def results_dir() -> str:
    """benchmarks/results/ next to the benchmark files."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """Fixed-width table with a title and an optional footnote."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def format_series(
    title: str,
    series: Sequence[Tuple[float, float]],
    time_unit: str = "ms",
    value_unit: str = "tx/s",
    markers: Sequence[Tuple[float, str]] = (),
    width: int = 60,
) -> str:
    """An ASCII timeline plot (the figures' throughput-over-time)."""
    if not series:
        return f"{title}\n(empty series)\n"
    scale = {"ms": 1e3, "us": 1e6, "s": 1.0}[time_unit]
    peak = max(value for _t, value in series) or 1.0
    lines = [title, "=" * len(title)]
    marker_map = {}
    for when, label in markers:
        # Attach each marker to the closest sample.
        closest = min(range(len(series)), key=lambda i: abs(series[i][0] - when))
        marker_map.setdefault(closest, []).append(label)
    for index, (when, value) in enumerate(series):
        bar = "#" * int(round(width * value / peak))
        annotation = ""
        if index in marker_map:
            annotation = "   <-- " + ", ".join(marker_map[index])
        lines.append(
            f"{when * scale:8.2f} {time_unit} |{bar:<{width}}| "
            f"{value:12.0f} {value_unit}{annotation}"
        )
    return "\n".join(lines) + "\n"


def write_report(name: str, text: str) -> str:
    """Persist (and echo) one benchmark's report; returns the path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n{text}\n[report written to {path}]")
    return path
