"""Report formatting: paper-vs-measured tables and timeline series.

Every benchmark writes a plain-text report under ``benchmarks/results/``
so the regenerated rows/series survive pytest's output capture; the
same text is printed for ``-s`` runs. EXPERIMENTS.md indexes the
reports against the paper's tables and figures.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "format_table",
    "format_series",
    "write_report",
    "results_dir",
    "write_bench_snapshot",
    "bench_snapshot_payload",
]


def results_dir() -> str:
    """benchmarks/results/ next to the benchmark files."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """Fixed-width table with a title and an optional footnote."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def format_series(
    title: str,
    series: Sequence[Tuple[float, float]],
    time_unit: str = "ms",
    value_unit: str = "tx/s",
    markers: Sequence[Tuple[float, str]] = (),
    width: int = 60,
) -> str:
    """An ASCII timeline plot (the figures' throughput-over-time)."""
    if not series:
        return f"{title}\n(empty series)\n"
    scale = {"ms": 1e3, "us": 1e6, "s": 1.0}[time_unit]
    peak = max(value for _t, value in series) or 1.0
    lines = [title, "=" * len(title)]
    marker_map = {}
    for when, label in markers:
        # Attach each marker to the closest sample.
        closest = min(range(len(series)), key=lambda i: abs(series[i][0] - when))
        marker_map.setdefault(closest, []).append(label)
    for index, (when, value) in enumerate(series):
        bar = "#" * int(round(width * value / peak))
        annotation = ""
        if index in marker_map:
            annotation = "   <-- " + ", ".join(marker_map[index])
        lines.append(
            f"{when * scale:8.2f} {time_unit} |{bar:<{width}}| "
            f"{value:12.0f} {value_unit}{annotation}"
        )
    return "\n".join(lines) + "\n"


def write_report(name: str, text: str) -> str:
    """Persist (and echo) one benchmark's report; returns the path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n{text}\n[report written to {path}]")
    return path


def bench_snapshot_payload(result, obs=None) -> Dict[str, Any]:
    """JSON-friendly snapshot of one steady-state run.

    Combines the harness-level numbers with flight-recorder derivations
    when *obs* carries flight records. Every figure is virtual-time —
    nothing here reads a wall clock, so a re-run with the same seed
    reproduces the snapshot byte for byte.
    """
    payload: Dict[str, Any] = {
        "protocol": result.protocol,
        "workload": result.workload,
        "duration_s": result.duration,
        "commits": result.commits,
        "aborts": result.aborts,
        "abort_rate": round(result.abort_rate, 6),
        "throughput_tps": round(result.throughput, 2),
        "p50_latency_us": round(result.p50_latency * 1e6, 3),
        "p99_latency_us": round(result.p99_latency * 1e6, 3),
    }
    if obs is not None and getattr(obs.flight, "attempts", None):
        from repro.obs.report import (
            check_log_write_claim,
            from_obs,
            phase_latency_rows,
            verb_accounting_rows,
        )

        run = from_obs(obs)
        payload["phase_latency_us"] = {
            f"{protocol}/{phase}": {
                "n": n, "mean": float(mean), "p50": float(p50),
                "p90": float(p90), "p99": float(p99),
            }
            for protocol, phase, n, mean, p50, p90, p99 in phase_latency_rows(run)
        }
        payload["verbs_per_commit"] = {
            f"{protocol}/{phase}/{kind}": float(per_commit)
            for protocol, phase, kind, _cat, _total, per_commit, _p50, _p99
            in verb_accounting_rows(run)
        }
        payload["log_write_claim"] = [
            {
                "protocol": claim["protocol"],
                "formula": claim["formula"],
                "checked": claim["checked"],
                "violations": claim["violations"],
                "ok": claim["ok"],
                "mean_log_writes": round(claim["mean_log_writes"], 4),
                "mean_writes": round(claim["mean_writes"], 4),
            }
            for claim in check_log_write_claim(run)
        ]
    return payload


def write_bench_snapshot(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` under benchmarks/results/; returns path."""
    path = os.path.join(results_dir(), f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[snapshot written to {path}]")
    return path
