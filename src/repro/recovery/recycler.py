"""Background coordinator-id recycling (§3.1.2 "Recycling coordinator-ids").

The 16-bit id space allows 64K coordinator spawns over the system's
lifetime. When more than 95% of the ids have been consumed, the FD
triggers this background mechanism:

1. **Scan** every memory server and release all remaining stray locks
   owned by failed coordinators, using CAS operations — CAS is
   sufficient to resolve races with in-flight transactions (a
   concurrent PILL steal and the recycler's unlock target the same
   observed word; exactly one wins and both outcomes are safe).
2. **Notify** every compute server to clear the recycled ids from its
   failed-ids bitset, and wait for the acknowledgments — an id must
   not be reusable while any live node could still "steal" locks
   under it.
3. **Return** the ids to the allocator's pool.

Unlike the Baseline's recovery scan this runs concurrently with
transaction processing: nothing is paused.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Set

from repro.protocol.locks import is_locked, owner_of
from repro.rdma.errors import RdmaError
from repro.sim import Event, Simulator

__all__ = ["IdRecycler"]


class IdRecycler:
    """Scans for stray locks and recycles failed coordinator ids."""

    def __init__(
        self,
        sim: Simulator,
        verbs,
        catalog,
        network,
        memory_nodes: Dict[int, Any],
        compute_nodes: Dict[int, Any],
        id_allocator,
        scan_chunk_slots: int = 512,
    ) -> None:
        self.sim = sim
        self.verbs = verbs
        self.catalog = catalog
        self.network = network
        self.memory_nodes = memory_nodes
        self.compute_nodes = compute_nodes
        self.id_allocator = id_allocator
        self.scan_chunk_slots = scan_chunk_slots
        self.runs = 0
        self.locks_released = 0
        self.ids_recycled = 0

    def run_once(self):
        """Start one recycling pass; returns its process (an Event)."""
        return self.sim.process(self._run(), name="id-recycler")

    def _run(self) -> Generator[Event, Any, None]:
        candidates: Set[int] = set(self.id_allocator.failed_ids())
        if not candidates:
            return

        # 1. Scan all memory, releasing stray locks under candidate ids.
        per_slot_rtt = 2 * self.network.config.one_way_latency + 4e-7
        for mem_id, memory in self.memory_nodes.items():
            if not memory.alive:
                continue
            for table_id, table in memory.tables.items():
                position = 0
                total = len(table)
                while position < total:
                    chunk = min(self.scan_chunk_slots, total - position)
                    yield self.sim.timeout(chunk * per_slot_rtt)
                    try:
                        locked, position = yield self.verbs.scan_chunk(
                            mem_id, table_id, position, chunk
                        )
                    except RdmaError:
                        break
                    for slot, word in locked:
                        if not is_locked(word) or owner_of(word) not in candidates:
                            continue
                        try:
                            old = yield self.verbs.cas_lock(
                                mem_id, table_id, slot, word, 0
                            )
                            if old == word:
                                self.locks_released += 1
                        except RdmaError:
                            continue

        # 2. Tell every live compute node to forget these ids, and wait
        #    for all acknowledgments before the ids become reusable.
        pending = [
            node for node in self.compute_nodes.values() if node.alive
        ]
        if pending:
            acks = Event(self.sim)
            remaining = {"count": len(pending)}

            def deliver(node) -> None:
                for coord_id in candidates:
                    node.failed_ids.discard(coord_id)
                # Ack travels back over the network.
                delay = self.network.delay(64)
                self.sim.call_at(self.sim.now + delay, acked)

            def acked() -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0 and not acks.triggered:
                    acks.succeed(None)

            for node in pending:
                delay = self.network.delay(128)
                self.sim.call_at(self.sim.now + delay, lambda n=node: deliver(n))
            yield acks

        # 3. Only now can the ids be handed out again.
        self.ids_recycled += self.id_allocator.recycle(candidates)
        self.runs += 1
