"""Heartbeat-based failure detection (§3.2.2 step 1, §3.2.4).

Compute and memory nodes send periodic heartbeats; the detector scans
its last-seen table every ``check_interval`` and declares a node failed
once its heartbeat is older than ``timeout`` (5 ms in the paper's
evaluation). False positives are possible and allowed — active-link
termination (Cor1) makes them safe, and the detector itself never
needs to be perfect, only eventually accurate (partial synchrony).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.obs import NOOP_OBS
from repro.recovery.idalloc import IdAllocator
from repro.sim import Event, Simulator

__all__ = ["FailureDetector"]


class FailureDetector:
    """Standalone heartbeat failure detector (Figure 4a)."""

    #: How many replicas of the detector state exist (1 = standalone).
    replica_count = 1

    def __init__(
        self,
        sim: Simulator,
        id_allocator: Optional[IdAllocator] = None,
        timeout: float = 5e-3,
        check_interval: float = 0.5e-3,
        redetect_interval: Optional[float] = None,
    ) -> None:
        if timeout <= 0 or check_interval <= 0:
            raise ValueError("timeout and check_interval must be positive")
        if redetect_interval is not None and redetect_interval <= 0:
            raise ValueError("redetect_interval must be positive")
        self.sim = sim
        self.id_allocator = id_allocator or IdAllocator()
        self.timeout = timeout
        self.check_interval = check_interval
        # Re-detection (§3.2.2 step 1 rerun): a declared-failed compute
        # node whose recovery *died mid-flight* (the RC itself crashed)
        # is declared again after this much silence, so a fresh
        # recovery starts over — safe because every step is idempotent.
        # None (the default) preserves the historical declare-once
        # behaviour: ``_suspected`` permanently gates re-declaration.
        self.redetect_interval = redetect_interval
        self._last_declared: Dict[Tuple[str, int], float] = {}
        self.recovery_manager = None  # wired by the cluster builder
        self.obs = NOOP_OBS  # wired by the cluster builder
        self._last_heartbeat: Dict[Tuple[str, int], float] = {}
        self._registered: Dict[Tuple[str, int], Any] = {}
        self._suspected: Set[Tuple[str, int]] = set()
        # Heartbeats from these keys are dropped on arrival (a network
        # partition between the node and the detector).
        self._blackholed: Set[Tuple[str, int]] = set()
        self.detections: List[Tuple[float, str, int]] = []
        # Subset of detections that were *re*-declarations of an
        # already-suspected node (the §3.2.2 step-1 rerun); the chaos
        # campaign and the evaluation report surface this count.
        self.redetections: List[Tuple[float, str, int]] = []
        self._process = None

    # -- registration ----------------------------------------------------------

    def allocate_coordinator_id(self) -> int:
        """Serialized id allocation at coordinator spawn (§3.1.2)."""
        return self.id_allocator.allocate()

    def register(self, kind: str, node) -> None:
        """Track *node* ('compute' or 'memory') from now on."""
        key = (kind, node.node_id)
        self._registered[key] = node
        self._last_heartbeat[key] = self.sim.now
        self._suspected.discard(key)

    def deregister(self, kind: str, node_id: int) -> None:
        """Stop tracking a node."""
        key = (kind, node_id)
        self._registered.pop(key, None)
        self._last_heartbeat.pop(key, None)
        self._suspected.discard(key)

    # -- heartbeat ingestion ------------------------------------------------------

    def heartbeat_sinks(self) -> List[Callable[[str, int, float], None]]:
        """Sinks a node sends heartbeats to (one per FD replica)."""
        return [self.heartbeat]

    def heartbeat(self, kind: str, node_id: int, sent_at: float) -> None:
        """Record a heartbeat arrival for (kind, node)."""
        profiler = self.sim.profiler
        profiler.push("fd", "heartbeat")
        try:
            key = (kind, node_id)
            if key in self._registered and key not in self._blackholed:
                self._last_heartbeat[key] = self.sim.now
        finally:
            profiler.pop()

    # -- partitions (false-positive injection) ---------------------------------

    def blackhole(self, kind: str, node_id: int) -> None:
        """Drop subsequent heartbeats from (kind, node).

        Models a network partition between a *healthy* node and the
        detector: once ``timeout`` elapses the node is declared failed
        even though it is still running — the FD false positive the
        paper explicitly allows (§3.2.2; Cor1 makes it safe). Chaos
        schedules use this to manufacture false positives at an exact
        virtual time instead of hoping a loss spike lines up.
        """
        self._blackholed.add((kind, node_id))

    def heal(self, kind: str, node_id: int) -> None:
        """Deliver heartbeats from (kind, node) again."""
        self._blackholed.discard((kind, node_id))

    # -- detection loop --------------------------------------------------------------

    def start(self) -> None:
        """Start the periodic detection loop."""
        self._process = self.sim.process(self._run(), name="failure-detector")

    def stop(self) -> None:
        """Stop the detection loop."""
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self) -> Generator[Event, Any, None]:
        while True:
            yield self.sim.timeout(self.check_interval)
            now = self.sim.now
            for key, node in list(self._registered.items()):
                if key in self._suspected:
                    continue
                if now - self._last_heartbeat[key] > self.timeout:
                    self._suspected.add(key)
                    yield from self._declare_failed(key, node)
            yield from self._redetect_pass()

    def _redetect_pass(self) -> Generator[Event, Any, None]:
        """Re-declare dead compute nodes whose recovery never finished.

        A node stays in ``_suspected`` forever once declared; without
        re-detection, a recovery process that crashes mid-flight (the
        RC itself failing) leaves the node down with its coordinator
        ids never marked failed — permanently, since nothing declares
        it again. A candidate for re-declaration must be: actually dead
        (never a false positive — the node would heartbeat), not
        currently being recovered, with recovery demonstrably
        unfinished (some coordinator id not yet marked failed), and
        quiet for ``redetect_interval`` since the last declaration.
        """
        if self.redetect_interval is None or self.recovery_manager is None:
            return
        now = self.sim.now
        for key in sorted(self._suspected):
            kind, _node_id = key
            if kind != "compute":
                continue
            node = self._registered.get(key)
            if node is None or node.alive:
                continue
            if key in self.recovery_manager._in_progress:
                continue
            if now - self._last_declared.get(key, 0.0) < self.redetect_interval:
                continue
            coord_ids = node.coordinator_ids()
            if all(cid in self.id_allocator.failed for cid in coord_ids):
                continue
            self.redetections.append((now, kind, _node_id))
            self.obs.tracer.instant(
                "recovery", "redetect", now, pid=_node_id, args={"kind": kind}
            )
            self.obs.metrics.inc("fd.redetections", kind=kind)
            yield from self._declare_failed(key, node)

    def _declare_failed(self, key, node) -> Generator[Event, Any, None]:
        """Hand a suspicion to the recovery manager.

        Subclasses insert the quorum-agreement delay here (Figure 4b).
        """
        kind, node_id = key
        self._last_declared[key] = self.sim.now
        self.detections.append((self.sim.now, kind, node_id))
        # The heartbeat-miss window: silence from the last heartbeat
        # until the detector declared the node failed.
        self.obs.tracer.span(
            "recovery",
            "heartbeat-miss",
            self._last_heartbeat.get(key, self.sim.now),
            self.sim.now,
            pid=node_id,
            args={"kind": kind},
        )
        self.obs.tracer.instant(
            "recovery", "declare-failed", self.sim.now, pid=node_id,
            args={"kind": kind},
        )
        self.obs.metrics.inc("fd.detections", kind=kind)
        if self.recovery_manager is None:
            return
        if kind == "compute":
            self.recovery_manager.handle_compute_failure(node)
        else:
            self.recovery_manager.handle_memory_failure(node)
        # Make this a generator even when no delay is inserted.
        if False:  # pragma: no cover - generator marker
            yield
