"""The recovery coordinator (RC) and the end-to-end recovery protocol.

Implements §3.2.2's four steps for compute failures:

1. **Detection** — performed by the failure detector, which calls
   :meth:`RecoveryManager.handle_compute_failure`.
2. **Active-link termination** — revoke the failed node's RDMA rights
   at every memory server via a wimpy-core RPC (Cor1: even a falsely
   suspected node can no longer touch memory).
3. **Log recovery** — read each failed coordinator's log region(s),
   rebuild the write-set of every Logged-Stray-Tx, and roll it forward
   iff *every* replica of *every* written object already carries the
   new version (Cor2/Cor3), otherwise roll it back from the undo
   images. Regions are then truncated, making re-execution idempotent
   (§3.2.3).
4. **Stray-lock notification** — only after truncation, tell the live
   compute servers the failed coordinator-ids so they start stealing
   NotLogged-Stray-Tx locks (Cor4).

Four recovery modes mirror the protocol zoo:

* ``pill``     — Pandora (and LOTUS, whose ticket words carry the same
  owner attribution): steps 1-4 as above; stray locks are healed
  lazily by PILL stealing, so nothing blocks.
* ``locklog``  — traditional scheme: additionally replays the
  per-lock intent records to release stray locks eagerly (~2x slower).
* ``scan``     — Baseline (FORD): locks are anonymous, so the whole
  store is paused, drained, and scanned slot-by-slot with one-sided
  reads (~5 s per million keys, §6.1).
* ``vote``     — vote1pc (logless 1PC): no log regions exist, so the
  keyspace is scanned for dead-owner locks (no stop-the-world — the
  words carry PILL owners) and each interrupted txn's decision is
  re-derived from replica state: roll forward iff every manifest
  address reached its new version on all live replicas, else roll
  back from the per-slot vote shadows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro.obs import NOOP_OBS
from repro.protocol.locks import is_locked, owner_of
from repro.rdma.errors import RdmaError
from repro.sim import Event, Simulator

__all__ = ["RecoveryManager", "RecoveryRecord"]

# Log-entry tuple layout (see WriteIntent.log_entry):
# (table_id, slot, key, old_version, new_version,
#  old_value, new_value, old_present, new_present)
_E_TABLE, _E_SLOT, _E_KEY, _E_OLD_VER, _E_NEW_VER = 0, 1, 2, 3, 4
_E_OLD_VAL, _E_NEW_VAL, _E_OLD_PRESENT, _E_NEW_PRESENT = 5, 6, 7, 8


@dataclass
class RecoveryRecord:
    """Timeline and counters of one node recovery (for the harness)."""

    node_id: int
    kind: str  # "compute" or "memory"
    detected_at: float
    fenced_at: float = 0.0
    log_recovered_at: float = 0.0
    notified_at: float = 0.0
    finished_at: float = 0.0
    coordinators: int = 0
    logged_txns: int = 0
    rolled_forward: int = 0
    rolled_back: int = 0
    locks_released: int = 0
    scanned_slots: int = 0
    # Replica copies actually rewritten from undo images during
    # roll-back (a no-op roll-back restores nothing).
    restored_replicas: int = 0

    @property
    def log_recovery_latency(self) -> float:
        """The paper's Table 2 metric: time spent in log recovery."""
        return self.log_recovered_at - self.fenced_at

    @property
    def total_latency(self) -> float:
        """Detection-to-finished duration."""
        return self.finished_at - self.detected_at


class RecoveryManager:
    """Runs recovery on a dedicated compute identity with own verbs."""

    def __init__(
        self,
        sim: Simulator,
        verbs,
        catalog,
        network,
        compute_nodes: Dict[int, Any],
        memory_nodes: Dict[int, Any],
        id_allocator,
        mode: str = "pill",
        drain_delay: float = 0.5e-3,
        reconfig_delay: float = 2e-3,
        scan_chunk_slots: int = 512,
        restart_hook=None,
        restart_after: Optional[float] = None,
        obs=None,
        parallel_log_recovery: bool = True,
    ) -> None:
        if mode not in ("pill", "locklog", "scan", "vote"):
            raise ValueError(f"unknown recovery mode {mode!r}")
        self.sim = sim
        self.verbs = verbs
        self.catalog = catalog
        self.placement = catalog.placement
        self.network = network
        self.compute_nodes = compute_nodes
        self.memory_nodes = memory_nodes
        self.id_allocator = id_allocator
        self.mode = mode
        self.drain_delay = drain_delay
        self.reconfig_delay = reconfig_delay
        self.scan_chunk_slots = scan_chunk_slots
        self.restart_hook = restart_hook
        self.restart_after = restart_after
        self.parallel_log_recovery = parallel_log_recovery
        self.obs = obs if obs is not None else NOOP_OBS
        self.records: List[RecoveryRecord] = []
        self._in_progress: Set[Tuple[str, int]] = set()
        self._processes: Dict[Tuple[str, int], Any] = {}

    # -- entry points (called by the failure detector) -----------------------

    def handle_compute_failure(self, node) -> Optional[Event]:
        """Begin the four-step compute recovery (section 3.2.2)."""
        key = ("compute", node.node_id)
        if key in self._in_progress:
            return None
        self._in_progress.add(key)
        process = self.sim.process(
            self._recover_compute(node), name=f"recover-c{node.node_id}"
        )
        self._processes[key] = process
        return process

    def handle_memory_failure(self, node) -> Optional[Event]:
        """Begin memory-failure reconfiguration (section 3.2.5)."""
        key = ("memory", node.node_id)
        if key in self._in_progress:
            return None
        self._in_progress.add(key)
        process = self.sim.process(
            self._recover_memory(node), name=f"recover-m{node.node_id}"
        )
        self._processes[key] = process
        return process

    def kill_recovery(self, kind: str, node_id: int) -> bool:
        """Crash-stop an in-flight recovery (the RC itself failing).

        Returns True when a live recovery process was killed. The
        ``finally`` blocks in the recovery generators run on kill, so
        the in-progress claim is released and a later re-detection (or
        an explicit ``handle_*_failure`` call) can start recovery over
        from scratch — which is safe because every step is idempotent.
        """
        process = self._processes.get((kind, node_id))
        if process is None or not process.is_alive:
            return False
        process.kill()
        return True

    # -- compute-failure recovery (§3.2.2) ---------------------------------------

    def _alive_memory_ids(self) -> List[int]:
        return [nid for nid, node in self.memory_nodes.items() if node.alive]

    def _alive_compute_nodes(self, excluding: int) -> List[Any]:
        return [
            node
            for node in self.compute_nodes.values()
            if node.alive and node.node_id != excluding
        ]

    def _recover_compute(self, node) -> Generator[Event, Any, None]:
        key = ("compute", node.node_id)
        try:
            yield from self._recover_compute_inner(node)
        finally:
            # Runs on normal completion AND when this recovery process
            # is itself killed mid-flight (GeneratorExit): the claim
            # must be released either way, or the node becomes
            # unrecoverable forever — no re-detection can start (the
            # key is still "in progress") and restart_compute defers
            # in a loop waiting for it to clear. Re-running recovery
            # from scratch is safe because every step is idempotent
            # (§3.2.3).
            self._in_progress.discard(key)
            self._processes.pop(key, None)

    def _recover_compute_inner(self, node) -> Generator[Event, Any, None]:
        record = RecoveryRecord(
            node_id=node.node_id, kind="compute", detected_at=self.sim.now
        )
        self.records.append(record)
        coord_ids = node.coordinator_ids()
        record.coordinators = len(coord_ids)
        tracer = self.obs.tracer
        self.obs.metrics.inc("recovery.compute_recoveries")

        # Step 2: active-link termination at every live memory server.
        # Posted in parallel, awaited one by one: a memory server that
        # crashes between posting and its ack fails only its own fence
        # (a dead server cannot serve the fenced node's verbs anyway)
        # — an all_of here would abort the whole recovery instead.
        fence_events = [
            self.verbs.revoke_link(mem_id, node.node_id)
            for mem_id in self._alive_memory_ids()
        ]
        for event in fence_events:
            try:
                yield event
            except RdmaError:
                continue
        record.fenced_at = self.sim.now
        tracer.span(
            "recovery",
            "link-revoke",
            record.detected_at,
            record.fenced_at,
            pid=node.node_id,
            args={"memory_nodes": len(fence_events)},
        )

        # Step 3: log recovery (or its logless / anonymous analogues).
        if self.mode == "scan":
            yield from self._scan_recovery(node, coord_ids, record)
        elif self.mode == "vote":
            yield from self._vote_recovery(node, coord_ids, record)
        else:
            yield from self._log_recovery(coord_ids, record, pid=node.node_id)
        record.log_recovered_at = self.sim.now

        # Step 4: stray-lock notification, strictly after truncation
        # (Cor4) — only NotLogged-Stray-Tx locks remain stealable.
        for coord_id in coord_ids:
            self.id_allocator.mark_failed(coord_id)
        for compute in self._alive_compute_nodes(excluding=node.node_id):
            delay = self.network.delay(128)
            self.sim.call_at(
                self.sim.now + delay,
                lambda n=compute, ids=tuple(coord_ids): n.add_failed_ids(ids),
            )
        record.notified_at = self.sim.now
        record.finished_at = self.sim.now
        tracer.span(
            "recovery",
            "stray-lock-notify",
            record.log_recovered_at,
            record.notified_at,
            pid=node.node_id,
            args={"failed_ids": len(coord_ids)},
        )
        metrics = self.obs.metrics
        metrics.inc("recovery.rolled_forward", record.rolled_forward)
        metrics.inc("recovery.rolled_back", record.rolled_back)
        metrics.inc("recovery.locks_released", record.locks_released)
        metrics.observe(
            "recovery.log_recovery_latency", record.log_recovery_latency
        )
        metrics.observe("recovery.total_latency", record.total_latency)

        # Only a recovery that ran to completion schedules the restart:
        # a node whose recovery died mid-flight must stay down until a
        # fresh recovery finishes (its old ids are not yet marked
        # failed, so restarting would race stray-lock notification).
        if self.restart_hook is not None and self.restart_after is not None:
            self.sim.call_at(
                self.sim.now + self.restart_after,
                lambda n=node: self.restart_hook(n),
            )

    # -- log recovery --------------------------------------------------------------

    def _log_source_nodes(self, coord_id: int) -> List[int]:
        """Where this coordinator's logs live.

        Coalesced logging gathers them in f+1 fixed servers (§3.1.4);
        FORD's per-object logging spreads them over every memory node.
        """
        if self.mode == "scan":
            return self._alive_memory_ids()
        return [
            node_id
            for node_id in self.catalog.log_nodes(coord_id)
            if self.memory_nodes[node_id].alive
        ]

    def _log_recovery(
        self, coord_ids: Iterable[int], record: RecoveryRecord, pid: int = 0
    ) -> Generator[Event, Any, None]:
        """Steps: read log regions, decide per txn, repair, truncate.

        When ``parallel_log_recovery`` is on (the default, matching the
        paper's RC which fetches all f+1 regions "with large parallel
        reads", §4/Table 2), the region reads for *every* dead
        coordinator are posted in one burst before the first result is
        awaited — so the reads pipeline on the QPs instead of paying
        one full round trip per coordinator. Repairs then run in
        deterministic coordinator order (they mutate object state, so
        interleaving them would be a behaviour change, not a speedup),
        and the truncations go out as one final burst.
        """
        coord_ids = list(coord_ids)
        if not self.parallel_log_recovery or len(coord_ids) <= 1:
            for coord_id in coord_ids:
                yield from self._recover_coordinator_logs(coord_id, record, pid=pid)
            return

        # Phase 1: one parallel burst of all region reads. Posting
        # happens eagerly at verbs.read_log_region() call time; the
        # yields below only await completions.
        read_started = self.sim.now
        posted = []
        for coord_id in coord_ids:
            source_nodes = self._log_source_nodes(coord_id)
            events = [
                self.verbs.read_log_region(node_id, coord_id)
                for node_id in source_nodes
            ]
            posted.append((coord_id, source_nodes, events))
        gathered = []
        for coord_id, source_nodes, events in posted:
            all_records = []
            for event in events:
                try:
                    all_records.extend((yield event))
                except RdmaError:
                    continue  # a log replica died; the others suffice
            gathered.append((coord_id, source_nodes, all_records))

        # Phase 2: decide + repair, coordinator by coordinator. Span
        # starts chain (first covers the read burst, the rest begin
        # where the previous replay ended) so the recovery spans still
        # tile [detected_at, finished_at] exactly.
        segment_started = read_started
        for coord_id, _source_nodes, all_records in gathered:
            yield from self._replay_coordinator_logs(
                coord_id, all_records, record, segment_started, pid=pid
            )
            segment_started = self.sim.now

        # Phase 3: one burst of region truncations.
        truncate_started = self.sim.now
        truncate_events = []
        regions = 0
        for coord_id, source_nodes, _all_records in gathered:
            for node_id in source_nodes:
                if self.memory_nodes[node_id].alive:
                    truncate_events.append(
                        self.verbs.truncate_log_region(node_id, coord_id)
                    )
                    regions += 1
        for event in truncate_events:
            try:
                yield event
            except RdmaError:
                continue
        self.obs.tracer.span(
            "recovery",
            "truncate",
            truncate_started,
            self.sim.now,
            pid=pid,
            args={"regions": regions, "coordinators": len(gathered)},
        )

    def _recover_coordinator_logs(
        self, coord_id: int, record: RecoveryRecord, pid: int = 0
    ) -> Generator[Event, Any, None]:
        """Sequential per-coordinator recovery: read, replay, truncate."""
        tracer = self.obs.tracer
        read_started = self.sim.now
        source_nodes = self._log_source_nodes(coord_id)
        read_events = [
            (node_id, self.verbs.read_log_region(node_id, coord_id))
            for node_id in source_nodes
        ]
        all_records = []
        for _node_id, event in read_events:
            try:
                all_records.extend((yield event))
            except RdmaError:
                continue  # a log replica died; the others suffice

        yield from self._replay_coordinator_logs(
            coord_id, all_records, record, read_started, pid=pid
        )

        truncate_started = self.sim.now
        truncate_events = [
            self.verbs.truncate_log_region(node_id, coord_id)
            for node_id in source_nodes
            if self.memory_nodes[node_id].alive
        ]
        for event in truncate_events:
            try:
                yield event
            except RdmaError:
                continue
        tracer.span(
            "recovery",
            "truncate",
            truncate_started,
            self.sim.now,
            pid=pid,
            tid=coord_id,
            args={"regions": len(truncate_events)},
        )

    def _replay_coordinator_logs(
        self,
        coord_id: int,
        all_records: List[Any],
        record: RecoveryRecord,
        read_started: float,
        pid: int = 0,
    ) -> Generator[Event, Any, None]:
        """Parse fetched log records, then repair each logged txn."""
        tracer = self.obs.tracer
        txns: Dict[int, Dict[Tuple[int, int], Tuple]] = {}
        lock_intents: List[Tuple] = []
        for log_record in all_records:
            if not log_record.valid:
                continue
            if log_record.txn_id == -1:
                lock_intents.extend(log_record.entries)
                continue
            entries = txns.setdefault(log_record.txn_id, {})
            for entry in log_record.entries:
                entries[(entry[_E_TABLE], entry[_E_SLOT])] = entry
        tracer.span(
            "recovery",
            "log-region-read",
            read_started,
            self.sim.now,
            pid=pid,
            tid=coord_id,
            args={"records": len(all_records), "logged_txns": len(txns)},
        )

        record.logged_txns += len(txns)
        for txn_id in sorted(txns):
            yield from self._repair_logged_txn(coord_id, txns[txn_id], record, pid=pid)

        if self.mode == "locklog" and lock_intents:
            release_started = self.sim.now
            yield from self._release_logged_locks(lock_intents, record)
            tracer.span(
                "recovery",
                "stray-lock-release",
                release_started,
                self.sim.now,
                pid=pid,
                tid=coord_id,
                args={"lock_intents": len(lock_intents)},
            )

    def _repair_logged_txn(
        self,
        coord_id: int,
        entries: Dict[Tuple[int, int], Tuple],
        record: RecoveryRecord,
        pid: int = 0,
    ) -> Generator[Event, Any, None]:
        """Decide roll-forward vs roll-back for one Logged-Stray-Tx."""
        repair_started = self.sim.now
        # Read the headers of every replica of every written object,
        # batched per memory node.
        per_node: Dict[int, List[Tuple[Tuple[int, int], Tuple[int, int]]]] = {}
        for (table_id, slot), entry in entries.items():
            for node_id in self.placement.replicas(table_id, slot):
                if not self.memory_nodes[node_id].alive:
                    continue
                per_node.setdefault(node_id, []).append(
                    ((table_id, slot), (table_id, slot))
                )
        headers: Dict[Tuple[int, Tuple[int, int]], Tuple] = {}
        posted = []
        for node_id, pairs in per_node.items():
            addresses = [address for _key, address in pairs]
            posted.append((node_id, pairs, self.verbs.read_headers(node_id, addresses)))
        for node_id, pairs, event in posted:
            try:
                results = yield event
            except RdmaError:
                continue
            for (key, _address), header in zip(pairs, results):
                headers[(node_id, key)] = header

        # Cor2/Cor3 decision: roll forward iff every live replica of
        # every write carries (at least) the new version — then a
        # commit-ack may have reached the client, while an abort-ack
        # is impossible.
        updated_all = True
        for (table_id, slot), entry in entries.items():
            for node_id in self.placement.replicas(table_id, slot):
                header = headers.get((node_id, (table_id, slot)))
                if header is None:
                    continue  # replica down; judged by the survivors
                _lock, version, _present = header
                if version < entry[_E_NEW_VER]:
                    updated_all = False
                    break
            if not updated_all:
                break

        if updated_all:
            record.rolled_forward += 1
        else:
            record.rolled_back += 1
            restore_events = []
            for (table_id, slot), entry in entries.items():
                value_size = self.catalog.tables[table_id].value_size
                for node_id in self.placement.replicas(table_id, slot):
                    header = headers.get((node_id, (table_id, slot)))
                    if header is None:
                        continue
                    _lock, version, _present = header
                    if version >= entry[_E_NEW_VER]:
                        # This replica took the update; undo it.
                        restore_events.append(
                            self.verbs.write_object(
                                node_id,
                                table_id,
                                slot,
                                entry[_E_OLD_VER],
                                entry[_E_OLD_VAL],
                                entry[_E_OLD_PRESENT],
                                value_size=value_size,
                            )
                        )
            record.restored_replicas += len(restore_events)
            for event in restore_events:
                try:
                    yield event
                except RdmaError:
                    continue
        self.obs.tracer.span(
            "recovery",
            "roll-forward" if updated_all else "roll-back",
            repair_started,
            self.sim.now,
            pid=pid,
            tid=coord_id,
            args={"writes": len(entries)},
        )

        # Release the primary locks this txn still holds. With PILL we
        # release by owner-conditioned CAS; anonymous locks (scan and
        # locklog modes) are handled by the scan / lock-intent replay.
        if self.mode == "pill":
            release_started = self.sim.now
            yield from self._release_owned_locks(coord_id, entries, headers, record)
            self.obs.tracer.span(
                "recovery",
                "stray-lock-release",
                release_started,
                self.sim.now,
                pid=pid,
                tid=coord_id,
            )

    def _release_owned_locks(
        self, coord_id, entries, headers, record
    ) -> Generator[Event, Any, None]:
        cas_events = []
        for (table_id, slot), _entry in entries.items():
            node_id = self.placement.primary(table_id, slot)
            header = headers.get((node_id, (table_id, slot)))
            if header is None:
                continue
            lock, _version, _present = header
            if is_locked(lock) and owner_of(lock) == coord_id:
                cas_events.append(
                    self.verbs.cas_lock(node_id, table_id, slot, lock, 0)
                )
        for event in cas_events:
            try:
                old = yield event
                if is_locked(old) and owner_of(old) == coord_id:
                    record.locks_released += 1
            except RdmaError:
                continue

    def _release_logged_locks(
        self, lock_intents: List[Tuple], record: RecoveryRecord
    ) -> Generator[Event, Any, None]:
        """Traditional scheme: replay lock-intent records.

        Each record carries the exact word that was CAS'd in; the lock
        is released only if the word still matches (the lock could have
        been released and re-taken by a live transaction since).
        """
        for table_id, slot, _key, word in lock_intents:
            try:
                node_id = self.placement.primary(table_id, slot)
            except RuntimeError:
                continue
            if not self.memory_nodes[node_id].alive:
                continue
            try:
                lock, _version, _present = yield self.verbs.read_header(
                    node_id, table_id, slot
                )
                if lock == word:
                    old = yield self.verbs.cas_lock(node_id, table_id, slot, word, 0)
                    if old == word:
                        record.locks_released += 1
            except RdmaError:
                continue

    # -- vote1pc logless recovery -------------------------------------------------

    def _vote_recovery(
        self, node, coord_ids: Iterable[int], record: RecoveryRecord
    ) -> Generator[Event, Any, None]:
        """Re-derive decisions from replica state (logless 1PC).

        There are no log regions to read: the price of skipping the
        f+1 log write is a keyspace scan for dead-owner locks. Unlike
        the Baseline scan this needs no stop-the-world — vote1pc words
        carry PILL owner ids, so live traffic keeps running and only
        locks attributable to the failed coordinators are touched.
        Every step is idempotent (conditioned CAS releases, version-
        guarded restores), so a killed recovery can re-run from scratch.
        """
        dead = set(coord_ids)
        tracer = self.obs.tracer

        # Phase 1: chunked header scans over every live memory node,
        # collecting slots locked by a dead coordinator. Chunks are
        # charged as bulk 16B-header transfers (the RC reads in large
        # parallel bursts, not one slot per round trip).
        scan_started = self.sim.now
        stray: List[Tuple[int, int, int, int]] = []  # (mem, table, slot, word)
        for mem_id in self._alive_memory_ids():
            memory = self.memory_nodes[mem_id]
            for table_id, table in memory.tables.items():
                position = 0
                total = len(table)
                while position < total:
                    chunk = min(self.scan_chunk_slots, total - position)
                    yield self.sim.timeout(self.network.transfer_time(chunk * 16))
                    try:
                        locked, position = yield self.verbs.scan_chunk(
                            mem_id, table_id, position, chunk
                        )
                    except RdmaError:
                        break
                    record.scanned_slots += chunk
                    for slot, word in locked:
                        if is_locked(word) and owner_of(word) in dead:
                            stray.append((mem_id, table_id, slot, word))
        tracer.span(
            "recovery",
            "vote-scan",
            scan_started,
            self.sim.now,
            pid=node.node_id,
            args={
                "scanned_slots": record.scanned_slots,
                "stray_locks": len(stray),
            },
        )

        # Phase 2: read the stray slots' vote shadows and group the
        # interrupted transactions by (coord, txn). A stray lock with
        # no shadow is a lock-phase-only txn — nothing was applied, so
        # releasing the lock (phase 4) is its entire roll-back.
        txns: Dict[Tuple[int, int], Tuple] = {}  # (coord, txn) -> manifest
        posted = [
            (mem_id, table_id, slot, self.verbs.read_vote(mem_id, table_id, slot))
            for mem_id, table_id, slot, _word in stray
        ]
        for mem_id, table_id, slot, event in posted:
            try:
                shadow = yield event
            except RdmaError:
                continue
            if shadow is None:
                continue
            shadow_coord, shadow_txn = shadow[0], shadow[1]
            if shadow_coord in dead:
                txns.setdefault((shadow_coord, shadow_txn), shadow[5])
        record.logged_txns += len(txns)

        # Phase 3: decide + repair, txn by txn (deterministic order).
        for (coord_id, txn_id), manifest in sorted(txns.items()):
            yield from self._repair_vote_txn(
                coord_id, txn_id, manifest, record, pid=node.node_id
            )

        # Phase 4: release every dead-owner lock found by the scan via
        # owner-conditioned CAS (which also clears that slot's shadow
        # server-side).
        release_started = self.sim.now
        for mem_id, table_id, slot, word in stray:
            try:
                old = yield self.verbs.cas_lock(mem_id, table_id, slot, word, 0)
                if old == word:
                    record.locks_released += 1
            except RdmaError:
                continue
        tracer.span(
            "recovery",
            "stray-lock-release",
            release_started,
            self.sim.now,
            pid=node.node_id,
            args={"locks": len(stray)},
        )

    def _repair_vote_txn(
        self,
        coord_id: int,
        txn_id: int,
        manifest: Tuple,
        record: RecoveryRecord,
        pid: int = 0,
    ) -> Generator[Event, Any, None]:
        """Decide one interrupted vote1pc txn from its manifest.

        Roll forward iff every live replica of every manifest address
        already carries (at least) the new version — only then can the
        client have been acked (the coordinator acks after all
        vote_writes complete). Otherwise roll back each replica that
        took an update, restoring the pre-image from that replica's own
        vote shadow.
        """
        repair_started = self.sim.now
        per_node: Dict[int, List[Tuple[int, int]]] = {}
        for table_id, slot, _new_version in manifest:
            for node_id in self.placement.replicas(table_id, slot):
                if self.memory_nodes[node_id].alive:
                    per_node.setdefault(node_id, []).append((table_id, slot))
        headers: Dict[Tuple[int, Tuple[int, int]], Tuple] = {}
        posted = [
            (node_id, addresses, self.verbs.read_headers(node_id, addresses))
            for node_id, addresses in per_node.items()
        ]
        for node_id, addresses, event in posted:
            try:
                results = yield event
            except RdmaError:
                continue
            for address, header in zip(addresses, results):
                headers[(node_id, address)] = header

        updated_all = True
        for table_id, slot, new_version in manifest:
            for node_id in self.placement.replicas(table_id, slot):
                header = headers.get((node_id, (table_id, slot)))
                if header is None:
                    continue  # replica down; judged by the survivors
                _lock, version, _present = header
                if version < new_version:
                    updated_all = False
                    break
            if not updated_all:
                break

        if updated_all:
            record.rolled_forward += 1
        else:
            record.rolled_back += 1
            vote_posted = []
            for table_id, slot, new_version in manifest:
                for node_id in self.placement.replicas(table_id, slot):
                    header = headers.get((node_id, (table_id, slot)))
                    if header is None or header[1] < new_version:
                        continue  # replica never took the update
                    vote_posted.append(
                        (
                            node_id,
                            table_id,
                            slot,
                            self.verbs.read_vote(node_id, table_id, slot),
                        )
                    )
            restore_events = []
            for node_id, table_id, slot, event in vote_posted:
                try:
                    shadow = yield event
                except RdmaError:
                    continue
                if (
                    shadow is None
                    or shadow[0] != coord_id
                    or shadow[1] != txn_id
                ):
                    continue  # already repaired / overwritten since
                restore_events.append(
                    self.verbs.write_object(
                        node_id,
                        table_id,
                        slot,
                        shadow[2],
                        shadow[3],
                        shadow[4],
                        value_size=self.catalog.tables[table_id].value_size,
                    )
                )
            record.restored_replicas += len(restore_events)
            for event in restore_events:
                try:
                    yield event
                except RdmaError:
                    continue
        self.obs.tracer.span(
            "recovery",
            "roll-forward" if updated_all else "roll-back",
            repair_started,
            self.sim.now,
            pid=pid,
            tid=coord_id,
            args={"writes": len(manifest)},
        )

    # -- Baseline scan recovery (§3.1.1 / §6.1) ---------------------------------------

    def _scan_recovery(
        self, node, coord_ids: Iterable[int], record: RecoveryRecord
    ) -> Generator[Event, Any, None]:
        """Stop the world, drain, scan every slot, unlock stray locks.

        One-sided reads cannot attribute anonymous locks to owners, so
        the Baseline must quiesce all compute servers first; afterwards
        every remaining lock belongs to the failed node and can be
        released. The scan itself issues one read per slot from a
        single recovery thread — the source of the ~5 s/million-keys
        latency the paper measures.
        """
        drain_started = self.sim.now
        for compute in self._alive_compute_nodes(excluding=node.node_id):
            delay = self.network.delay(128)
            self.sim.call_at(self.sim.now + delay, compute.pause)
        yield self.sim.timeout(self.drain_delay)
        self.obs.tracer.span(
            "recovery", "drain", drain_started, self.sim.now, pid=node.node_id
        )

        # FORD's undo logs still allow rolling logged txns back/forward.
        yield from self._log_recovery(coord_ids, record, pid=node.node_id)

        scan_started = self.sim.now
        per_slot_rtt = 2 * self.network.config.one_way_latency + 4e-7
        for mem_id in self._alive_memory_ids():
            memory = self.memory_nodes[mem_id]
            for table_id, table in memory.tables.items():
                position = 0
                total = len(table)
                while position < total:
                    chunk = min(self.scan_chunk_slots, total - position)
                    # Single-threaded per-slot one-sided reads: charge
                    # the round trips, then fetch the chunk's locks.
                    yield self.sim.timeout(chunk * per_slot_rtt)
                    try:
                        locked, position = yield self.verbs.scan_chunk(
                            mem_id, table_id, position, chunk
                        )
                    except RdmaError:
                        break
                    record.scanned_slots += chunk
                    for slot, word in locked:
                        try:
                            old = yield self.verbs.cas_lock(
                                mem_id, table_id, slot, word, 0
                            )
                            if old == word:
                                record.locks_released += 1
                        except RdmaError:
                            continue

        self.obs.tracer.span(
            "recovery",
            "scan",
            scan_started,
            self.sim.now,
            pid=node.node_id,
            args={"scanned_slots": record.scanned_slots},
        )
        for compute in self._alive_compute_nodes(excluding=node.node_id):
            delay = self.network.delay(128)
            self.sim.call_at(self.sim.now + delay, compute.resume)

    # -- memory re-replication (§3.2.5, ">f failures" path) -----------------------

    def restore_memory_node(self, node) -> Optional[Event]:
        """Bring a memory server back and re-replicate its partitions.

        §3.2.5: "Pandora adds new memory servers if there are more
        than f replica failures. For this, we stop the DKVS,
        re-replicate all the partitions, and then resume." The copy is
        charged at network bandwidth; compute servers are paused for
        its duration (this path is deliberately stop-the-world).
        """
        if node.alive:
            return None
        process = self.sim.process(
            self._restore_memory(node), name=f"rereplicate-m{node.node_id}"
        )
        self._processes[("memory-restore", node.node_id)] = process
        return process

    def _restore_memory(self, node) -> Generator[Event, Any, None]:
        try:
            yield from self._restore_memory_inner(node)
        finally:
            # Allow this node to be detected/restored again even if the
            # re-replication itself was killed mid-flight.
            self._in_progress.discard(("memory", node.node_id))
            self._processes.pop(("memory-restore", node.node_id), None)

    def _restore_memory_inner(self, node) -> Generator[Event, Any, None]:
        record = RecoveryRecord(
            node_id=node.node_id, kind="memory-restore", detected_at=self.sim.now
        )
        self.records.append(record)
        for compute in self.compute_nodes.values():
            if compute.alive:
                delay = self.network.delay(128)
                self.sim.call_at(self.sim.now + delay, compute.pause)
        yield self.sim.timeout(self.drain_delay)
        record.fenced_at = self.sim.now

        # Copy every partition replica this node hosts from a live
        # copy, charging the transfer at link bandwidth.
        node.restart()

        # Catch-up truncation: invalidations and truncations issued
        # while this node was down never reached it, but a restart
        # preserves DRAM — so its regions may still hold *valid*
        # records of transactions that have long since resolved. A
        # later log recovery replaying such a record can regress
        # committed data (an aborted txn's stale record rolls undo
        # images over newer versions). Every record here is stale —
        # in-flight txns that logged to this node failed their later
        # verbs against it and resolved via the interrupt path —
        # except records of a coordinator that crashed and has NOT
        # been recovered yet: those may be the surviving log copy, so
        # they are kept for the pending recovery to consume.
        pending_recovery = set()
        for compute in self.compute_nodes.values():
            if not compute.alive:
                pending_recovery.update(compute.coordinator_ids())
        for coord_id, region in node.log_regions.items():
            if (
                coord_id in pending_recovery
                and coord_id not in self.id_allocator.failed
            ):
                continue
            region.truncate()

        copied_bytes = 0
        for spec in self.catalog.tables.values():
            table_id = spec.table_id
            for slot in range(self.catalog.key_count(table_id)):
                replicas = self.placement.replicas(table_id, slot)
                if node.node_id not in replicas:
                    continue
                source_id = next(
                    (
                        nid
                        for nid in replicas
                        if nid != node.node_id and self.memory_nodes[nid].alive
                    ),
                    None,
                )
                if source_id is None:
                    continue  # data lost beyond f failures
                source = self.memory_nodes[source_id].slot(table_id, slot)
                target = node.slot(table_id, slot)
                target.lock = 0
                target.version = source.version
                target.value = source.value
                target.present = source.present
                copied_bytes += source.slot_bytes
        yield self.sim.timeout(self.network.transfer_time(copied_bytes))
        record.scanned_slots = copied_bytes  # reuse field: bytes moved
        record.log_recovered_at = self.sim.now

        self.placement.mark_up(node.node_id)
        for compute in self.compute_nodes.values():
            if compute.alive:
                delay = self.network.delay(128)
                self.sim.call_at(self.sim.now + delay, compute.resume)
        record.notified_at = self.sim.now
        record.finished_at = self.sim.now
        self.obs.tracer.span(
            "recovery",
            "re-replicate",
            record.detected_at,
            record.finished_at,
            pid=node.node_id,
            args={"bytes_copied": copied_bytes},
        )

    # -- memory-failure recovery (§3.2.5) -------------------------------------------------

    def _recover_memory(self, node) -> Generator[Event, Any, None]:
        try:
            yield from self._recover_memory_inner(node)
        finally:
            self._in_progress.discard(("memory", node.node_id))
            self._processes.pop(("memory", node.node_id), None)

    def _recover_memory_inner(self, node) -> Generator[Event, Any, None]:
        record = RecoveryRecord(
            node_id=node.node_id, kind="memory", detected_at=self.sim.now
        )
        self.records.append(record)

        # Tell every compute server; each pauses, interrupts in-flight
        # transactions (they self-decide commit/abort against the live
        # replica set), and recomputes primaries deterministically.
        self.placement.mark_down(node.node_id)
        for compute in self.compute_nodes.values():
            if compute.alive:
                delay = self.network.delay(128)
                self.sim.call_at(self.sim.now + delay, compute.begin_memory_reconfig)
        record.fenced_at = self.sim.now

        # Metadata agreement + drain window before resuming.
        yield self.sim.timeout(self.reconfig_delay)
        record.log_recovered_at = self.sim.now

        for compute in self.compute_nodes.values():
            if compute.alive:
                delay = self.network.delay(128)
                self.sim.call_at(self.sim.now + delay, compute.end_memory_reconfig)
        record.notified_at = self.sim.now
        record.finished_at = self.sim.now
        self.obs.tracer.span(
            "recovery",
            "memory-reconfig",
            record.detected_at,
            record.finished_at,
            pid=node.node_id,
        )
        self.obs.metrics.inc("recovery.memory_reconfigs")
