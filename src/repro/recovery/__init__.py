"""Failure detection and the RDMA-based recovery protocol (§3.2)."""

from repro.recovery.idalloc import IdAllocator
from repro.recovery.failure_detector import FailureDetector
from repro.recovery.distributed_fd import DistributedFailureDetector
from repro.recovery.manager import RecoveryManager, RecoveryRecord
from repro.recovery.recycler import IdRecycler

__all__ = [
    "DistributedFailureDetector",
    "FailureDetector",
    "IdAllocator",
    "IdRecycler",
    "RecoveryManager",
    "RecoveryRecord",
]
