"""Coordinator-id allocation and recycling (§3.1.2).

The failure detector owns a strictly serialized 16-bit id counter:
64K coordinator ids over the lifetime of the system. A failed id must
never be reassigned while its stray locks may still exist, so ids are
only returned to the pool by the recycling scan, which first releases
every stray lock held under them. Recycling triggers when more than
95% of the id space has been consumed.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.protocol.locks import ANONYMOUS_OWNER, MAX_COORD_ID
from repro.util.bitset import Bitset

__all__ = ["IdAllocator"]


class IdAllocator:
    """Strictly serialized coordinator-id source with recycling."""

    def __init__(
        self,
        # Ids 0..MAX_COORD_ID are allocatable; ANONYMOUS_OWNER (0xFFFF,
        # one past MAX_COORD_ID) stays reserved for FORD-style words.
        capacity: int = MAX_COORD_ID + 1,
        recycle_threshold: float = 0.95,
        # Serve ids starting here (ids below count as already consumed).
        # Lets boundary tests place coordinators hard against
        # MAX_COORD_ID without walking the whole 64K space first.
        first_id: int = 0,
    ) -> None:
        if capacity <= 0 or capacity > MAX_COORD_ID + 1:
            raise ValueError(f"capacity out of range: {capacity}")
        if not 0.0 < recycle_threshold <= 1.0:
            raise ValueError(f"recycle_threshold out of range: {recycle_threshold}")
        if not 0 <= first_id < capacity:
            raise ValueError(f"first_id out of range: {first_id}")
        self.capacity = capacity
        self.recycle_threshold = recycle_threshold
        self._next = first_id
        self._recycled: List[int] = []
        # Ids of coordinators declared failed whose stray locks may
        # still exist (the contents of every failed-ids bitset). Sized
        # over the full owner-field range so any `owner_of` result is
        # an in-range membership probe (the sentinel is never added).
        self.failed = Bitset(ANONYMOUS_OWNER + 1)
        self.allocated_ever = 0

    def allocate(self) -> int:
        """Next unique coordinator id (recycled ids are reused first)."""
        if self._recycled:
            self.allocated_ever += 1
            return self._recycled.pop()
        if self._next >= self.capacity:
            raise RuntimeError(
                "coordinator-id space exhausted; recycling has not run"
            )
        coord_id = self._next
        self._next += 1
        self.allocated_ever += 1
        return coord_id

    def mark_failed(self, coord_id: int) -> None:
        """Record a coordinator id as failed (stray locks possible)."""
        if coord_id == ANONYMOUS_OWNER:
            raise ValueError("the anonymous owner id cannot fail")
        self.failed.add(coord_id)

    def failed_ids(self) -> List[int]:
        """Snapshot of all currently failed ids."""
        return list(self.failed)

    @property
    def recycled_ids(self) -> List[int]:
        """Ids returned to the pool and not yet handed out again."""
        return list(self._recycled)

    @property
    def consumed_ratio(self) -> float:
        """Fraction of the id space handed out so far."""
        return self._next / self.capacity

    @property
    def needs_recycling(self) -> bool:
        """FD triggers the recycling scan above 95% consumption."""
        return self.consumed_ratio >= self.recycle_threshold

    def recycle(self, coord_ids: Iterable[int]) -> int:
        """Return ids to the pool after their stray locks were scrubbed.

        Only previously failed ids can be recycled (live ids are still
        in use), and the recycling scan must have released all locks
        they owned before calling this.
        """
        recycled = 0
        for coord_id in coord_ids:
            if self.failed.discard(coord_id):
                self._recycled.append(coord_id)
                recycled += 1
        return recycled
