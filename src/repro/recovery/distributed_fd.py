"""Quorum-replicated failure detector (Figure 4b, §3.2.4).

The detector's program state is replicated across a quorum of replicas
(ZooKeeper in the paper); compute servers heartbeat *all* replicas, and
a node is declared failed only when a **majority** of replicas has
timed it out. This removes the single detector as a failure/false-
negative point, at the cost of a quorum-agreement delay before each
declaration — with three replicas the paper still recovers in under
20 ms.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Tuple

from repro.recovery.failure_detector import FailureDetector
from repro.sim import Event, Simulator

__all__ = ["DistributedFailureDetector"]


class DistributedFailureDetector(FailureDetector):
    """Majority-vote heartbeat detector with quorum-commit latency."""

    def __init__(
        self,
        sim: Simulator,
        id_allocator=None,
        timeout: float = 5e-3,
        check_interval: float = 0.5e-3,
        replicas: int = 3,
        agreement_delay: float = 2e-3,
        redetect_interval=None,
    ) -> None:
        if replicas < 1 or replicas % 2 == 0:
            raise ValueError("replica count must be a positive odd number")
        if agreement_delay < 0:
            raise ValueError("agreement_delay must be non-negative")
        super().__init__(
            sim, id_allocator, timeout, check_interval, redetect_interval
        )
        self.replica_count = replicas
        self.agreement_delay = agreement_delay
        # Per-replica last-heartbeat tables.
        self._replica_heartbeats: List[Dict[Tuple[str, int], float]] = [
            {} for _ in range(replicas)
        ]

    # -- heartbeat ingestion --------------------------------------------------

    def heartbeat_sinks(self) -> List[Callable[[str, int, float], None]]:
        """One independent sink per replica; senders hit all of them.

        A heartbeat message can reach some replicas and not others
        (distinct network delays/jitter per sink call), which is the
        false-negative scenario replication defends against.
        """

        def make_sink(index: int) -> Callable[[str, int, float], None]:
            def sink(kind: str, node_id: int, sent_at: float) -> None:
                profiler = self.sim.profiler
                profiler.push("fd", "heartbeat")
                try:
                    key = (kind, node_id)
                    if key in self._registered and key not in self._blackholed:
                        self._replica_heartbeats[index][key] = self.sim.now
                finally:
                    profiler.pop()

            return sink

        return [make_sink(index) for index in range(self.replica_count)]

    def register(self, kind: str, node) -> None:
        super().register(kind, node)
        key = (kind, node.node_id)
        for table in self._replica_heartbeats:
            table[key] = self.sim.now

    def _run(self) -> Generator[Event, Any, None]:
        majority = self.replica_count // 2 + 1
        while True:
            yield self.sim.timeout(self.check_interval)
            now = self.sim.now
            for key, node in list(self._registered.items()):
                if key in self._suspected:
                    continue
                timed_out = sum(
                    1
                    for table in self._replica_heartbeats
                    if now - table.get(key, 0.0) > self.timeout
                )
                if timed_out >= majority:
                    self._suspected.add(key)
                    yield from self._declare_failed(key, node)
            yield from self._redetect_pass()

    def _declare_failed(self, key, node) -> Generator[Event, Any, None]:
        # Quorum commit of the failure decision before acting on it.
        yield self.sim.timeout(self.agreement_delay)
        yield from super()._declare_failed(key, node)
