"""RDMA-layer error types.

Real RDMA reliable-connection queue pairs transition to an error state
when their remote access rights are revoked; every posted work request
then completes with a flush error. We model that with
:class:`LinkRevokedError`, which is exactly the failure a falsely
suspected compute server observes after active-link termination
(Pandora §3.2.2, correctness criterion Cor1).
"""

from __future__ import annotations

__all__ = [
    "RdmaError",
    "LinkRevokedError",
    "RemoteNodeDownError",
    "InvalidAddressError",
]


class RdmaError(Exception):
    """Base class for simulated RDMA failures."""


class LinkRevokedError(RdmaError):
    """The memory node revoked this compute node's RDMA access rights."""

    def __init__(self, compute_node: int, memory_node: int) -> None:
        super().__init__(
            f"compute node {compute_node} link to memory node {memory_node} revoked"
        )
        self.compute_node = compute_node
        self.memory_node = memory_node


class RemoteNodeDownError(RdmaError):
    """The target memory node has crashed; the QP broke."""

    def __init__(self, memory_node: int) -> None:
        super().__init__(f"memory node {memory_node} is down")
        self.memory_node = memory_node


class InvalidAddressError(RdmaError):
    """An operation addressed memory outside any registered region."""
