"""Reliable-connection queue pairs.

A queue pair (QP) connects one compute node to one memory node and
delivers posted verbs *in order* — the property FORD and Pandora rely
on to guarantee that a lock CAS lands before the subsequent object read
(§3.1.1, "the role of RDMA").

Execution of a verb happens atomically at the memory node at the
message's arrival event, which is exactly the atomicity unit the NIC
provides for one-sided CAS/FAA. Crashed compute nodes are *not*
special-cased here: requests they posted before dying still land at
memory — this is the mechanism that produces stray locks.

Hot-path structure (see docs/KERNEL.md): each QP direction owns an
:class:`_ArrivalBatch` that coalesces back-to-back deliveries due at
the same arrival timestamp into **one** kernel entry instead of N heap
pushes. Batching is purely a scheduling-cost optimisation — the items
still execute in exactly the order the single-heap kernel would have
produced (a batch only absorbs an item while no other kernel entry
could sort between them), and ``processed_events`` is compensated so
the count matches the unbatched build bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.analysis import NOOP_SANITIZER
from repro.obs import NOOP_OBS
from repro.rdma.errors import LinkRevokedError, RemoteNodeDownError
from repro.rdma.network import Network
from repro.sim import Event, Simulator

__all__ = ["QueuePair", "VERB_HEADER_BYTES"]

# Approximate wire overhead of a one-sided verb (headers, CRCs).
VERB_HEADER_BYTES = 36


class _ArrivalBatch:
    """Coalesces same-arrival-time deliveries on one FIFO channel.

    A QP direction posts work due at computed arrival times that are
    monotone (FIFO). Pipelined verbs frequently share one arrival
    instant (the ``max(last, ...)`` serialisation), and the single-heap
    kernel paid one push/pop per delivery. Here the first delivery at a
    given instant schedules one kernel entry holding a list; subsequent
    same-instant deliveries append to the list as long as **no other
    heap push happened in between** (``sim._seq`` unchanged) — any
    intervening push could order between the batch and the new item at
    that timestamp, so the new item conservatively opens a fresh batch.
    Ring appends cannot land at a future timestamp and need no guard.

    The fired batch bumps ``sim._processed_events`` (and an enabled
    profiler's step counter) by ``len - 1`` so delivery counts stay
    bit-identical to the one-entry-per-delivery build.
    """

    __slots__ = ("sim", "items", "when", "seq")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.items: Optional[List[Callable[[], None]]] = None
        self.when = 0.0
        self.seq = -1

    def schedule(self, arrival: float, fn: Callable[[], None]) -> None:
        sim = self.sim
        items = self.items
        if items is not None and arrival == self.when and sim._seq == self.seq:
            items.append(fn)
            return
        if arrival <= sim.now:
            # Due immediately (zero-latency networks in unit tests):
            # no batching window exists, schedule directly.
            sim.call_at(arrival, fn)
            return
        items = [fn]
        self.items = items
        self.when = arrival

        def fire(self=self, items=items, sim=sim) -> None:
            if self.items is items:
                self.items = None
            if len(items) == 1:
                items[0]()
                return
            extra = len(items) - 1
            sim._processed_events += extra
            profiler = sim.profiler
            if profiler.enabled:
                # Keep the profiler's step counter in delivery units
                # too, so profiled events/sec stays comparable.
                profiler.steps += extra
            for fn in items:
                fn()

        sim.call_at(arrival, fire)
        self.seq = sim._seq


class QueuePair:
    """One compute-to-memory reliable connection."""

    __slots__ = (
        "sim",
        "network",
        "compute_id",
        "memory_node",
        "_last_request_arrival",
        "_last_response_arrival",
        "posted_verbs",
        "obs",
        "sanitizer",
        "_requests",
        "_responses",
        "_instrumented",
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        compute_id: int,
        memory_node: Any,
        obs: Optional[Any] = None,
        sanitizer: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.compute_id = compute_id
        self.memory_node = memory_node
        self._last_request_arrival = 0.0
        self._last_response_arrival = 0.0
        self.posted_verbs = 0
        # Observability hooks; the no-op singleton keeps the disabled
        # path at one attribute lookup + one empty call per verb.
        self.obs = obs if obs is not None else NOOP_OBS
        # PILL sanitizer hook (repro.analysis), same no-op pattern.
        self.sanitizer = sanitizer if sanitizer is not None else NOOP_SANITIZER
        self._requests = _ArrivalBatch(sim)
        self._responses = _ArrivalBatch(sim)
        # Hooks are fixed at construction (the cluster builder wires
        # obs/sanitizer/profiler before any traffic), so the no-op case
        # is decided once: when every hook is the disabled singleton the
        # post path skips even the empty calls. Instrumented and fast
        # paths schedule identically, so virtual time cannot diverge.
        self._instrumented = (
            sim.profiler.enabled
            or self.obs is not NOOP_OBS
            or self.sanitizer is not NOOP_SANITIZER
        )

    def post(
        self,
        kind: str,
        args: Tuple,
        request_size: int,
        signaled: bool = True,
    ) -> Event:
        """Post a one-sided verb; returns its completion event.

        The request arrives at the memory node after the network delay
        (FIFO-ordered within this QP), executes atomically there, and
        the completion fires back at the compute side one more delay
        later.

        ``signaled=False`` models unsignaled work requests: the verb
        still executes remotely but the returned event fires
        immediately at post time (the coordinator does not wait for
        it). FORD posts its background undo-log writes unsignaled.
        """
        self.posted_verbs += 1
        if self._instrumented:
            return self._post_instrumented(kind, args, request_size, signaled)

        # -- fast path: no profiler, no obs, no sanitizer ----------------
        sim = self.sim
        arrival = sim.now + self.network.delay(request_size + VERB_HEADER_BYTES)
        last = self._last_request_arrival
        if arrival < last:
            arrival = last
        self._last_request_arrival = arrival
        memory_node = self.memory_node
        compute_id = self.compute_id

        if not signaled:
            def execute_unsignaled() -> None:
                if memory_node.alive and not memory_node.is_revoked(compute_id):
                    memory_node.apply(compute_id, kind, args)

            self._requests.schedule(arrival, execute_unsignaled)
            done = Event(sim)
            done.finish_now(None)
            return done

        completion = Event(sim)

        def execute() -> None:
            if not memory_node.alive:
                self._respond(completion, None, RemoteNodeDownError(memory_node.node_id), 0)
                return
            if memory_node.is_revoked(compute_id):
                self._respond(
                    completion, None, LinkRevokedError(compute_id, memory_node.node_id), 0
                )
                return
            result, response_size = memory_node.apply(compute_id, kind, args)
            self._respond(completion, result, None, response_size)

        self._requests.schedule(arrival, execute)
        return completion

    def _respond(
        self,
        completion: Event,
        result: Any,
        error: Optional[Exception],
        response_size: int,
    ) -> None:
        """Fast-path response leg: delay, FIFO-serialise, deliver."""
        sim = self.sim
        arrival = sim.now + self.network.delay(response_size + VERB_HEADER_BYTES)
        last = self._last_response_arrival
        if arrival < last:
            arrival = last
        self._last_response_arrival = arrival
        self._responses.schedule(
            arrival, lambda: completion.finish_now(result, error)
        )

    # -- instrumented twin (profiler frames + obs + sanitizer hooks) ------

    def _post_instrumented(
        self,
        kind: str,
        args: Tuple,
        request_size: int,
        signaled: bool,
    ) -> Event:
        posted_at = self.sim.now
        profiler = self.sim.profiler
        # The rdma.post frame also carries the ambient txn-phase tag
        # (asserted by TxnTrace.focus), feeding the per-phase wall-time
        # rollup in `repro perf`.
        profiler.push("rdma.post", kind)
        try:
            return self._post_inner(kind, args, request_size, signaled, posted_at, profiler)
        finally:
            profiler.pop()

    def _post_inner(
        self,
        kind: str,
        args: Tuple,
        request_size: int,
        signaled: bool,
        posted_at: float,
        profiler: Any,
    ) -> Event:
        profiler.push("shim", "verb-post")
        try:
            self.obs.on_verb_post(
                kind,
                self.compute_id,
                self.memory_node.node_id,
                request_size + VERB_HEADER_BYTES,
                posted_at,
            )
            # Flight-recorder attribution: returns a token the completion
            # path fills with the measured latency (None when disabled or
            # the verb is system traffic with no focused attempt).
            flight_token = self.obs.flight.on_post(
                kind, self.compute_id, self.memory_node.node_id, posted_at, args
            )
            self.sanitizer.on_post(
                self.compute_id, self.memory_node.node_id, kind, args, posted_at
            )
        finally:
            profiler.pop()
        arrival = max(
            self._last_request_arrival,
            self.sim.now + self.network.delay(request_size + VERB_HEADER_BYTES),
        )
        self._last_request_arrival = arrival
        memory_node = self.memory_node
        compute_id = self.compute_id

        if not signaled:
            # No one waits for an unsignaled verb: execute it at
            # arrival, skip the response path, and hand the caller an
            # already-satisfied event.
            def execute_unsignaled() -> None:
                if memory_node.alive and not memory_node.is_revoked(compute_id):
                    memory_node.apply(compute_id, kind, args)

            self._requests.schedule(arrival, execute_unsignaled)
            done = Event(self.sim)
            done.finish_now(None)
            return done

        completion = Event(self.sim)

        def execute() -> None:
            if not memory_node.alive:
                self._complete(
                    completion,
                    None,
                    RemoteNodeDownError(memory_node.node_id),
                    0,
                    kind,
                    posted_at,
                    flight_token,
                )
                return
            if memory_node.is_revoked(compute_id):
                self._complete(
                    completion,
                    None,
                    LinkRevokedError(compute_id, memory_node.node_id),
                    0,
                    kind,
                    posted_at,
                    flight_token,
                )
                return
            result, response_size = memory_node.apply(compute_id, kind, args)
            self._complete(
                completion, result, None, response_size, kind, posted_at, flight_token
            )

        self._requests.schedule(arrival, execute)
        return completion

    def _complete(
        self,
        completion: Event,
        result: Any,
        error: Optional[Exception],
        response_size: int,
        kind: str = "",
        posted_at: float = 0.0,
        flight_token: Optional[Any] = None,
    ) -> None:
        profiler = self.sim.profiler
        profiler.push("rdma.complete", kind)
        try:
            arrival = max(
                self._last_response_arrival,
                self.sim.now + self.network.delay(response_size + VERB_HEADER_BYTES),
            )
            self._last_response_arrival = arrival
            self.obs.on_verb_complete(
                kind,
                self.memory_node.node_id,
                arrival - posted_at,
                response_size + VERB_HEADER_BYTES,
                error is None,
            )
            self.obs.flight.on_complete(
                flight_token, arrival - posted_at, error is None
            )
        finally:
            profiler.pop()

        def deliver() -> None:
            # finish_now runs waiters synchronously — we are already
            # executing exactly at the completion's due time.
            completion.finish_now(result, error)

        self._responses.schedule(arrival, deliver)
