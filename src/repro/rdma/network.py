"""Network latency and bandwidth model.

The paper's testbed uses 100 Gbps ConnectX-6 NICs with low-microsecond
round trips. The delay of a simulated message is::

    one_way_latency + size / bandwidth + jitter [+ retransmit penalty]

Only *relative* costs matter for the reproduced claims (e.g. "scanning
100 GiB over a 100 Gbps link takes at least 8 seconds", §3.1.1), and
those follow directly from this arithmetic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.obs.profile import NULL_PROFILER

__all__ = ["NetworkConfig", "Network"]


@dataclass
class NetworkConfig:
    """Tunable parameters of the simulated fabric.

    Defaults approximate the paper's CloudLab r650 testbed: ~3 us RTT
    for small verbs and 100 Gbps of per-link bandwidth.
    """

    one_way_latency: float = 1.5e-6
    bandwidth_bytes_per_sec: float = 12.5e9  # 100 Gbps
    jitter: float = 0.2e-6
    loss_probability: float = 0.0
    retransmit_timeout: float = 20e-6

    def validate(self) -> None:
        if self.one_way_latency <= 0:
            raise ValueError("one_way_latency must be positive")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be positive")


class Network:
    """Computes message delays; shared by every queue pair.

    RDMA reliable connections retransmit lost packets transparently at
    the transport layer (§2.1 failure model), so loss shows up to the
    protocol only as added latency — we model exactly that.
    """

    def __init__(self, config: NetworkConfig, rng: random.Random) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        # Wall-clock profiler hook; the cluster builder swaps in the
        # simulator's enabled profiler via the property below, which
        # rebinds ``delay`` so the unprofiled path pays no wrapper call.
        self._profiler = NULL_PROFILER
        self.delay = self._delay

    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler
        # Instance-attribute shadowing, same idiom as Simulator: the
        # per-message hot path is one bound call either way.
        self.delay = self._profiled_delay if profiler.enabled else self._delay

    def delay(self, size_bytes: int) -> float:
        """One-way delay for a message of *size_bytes*."""
        return self._delay(size_bytes)

    def _profiled_delay(self, size_bytes: int) -> float:
        """``delay`` twin with a wall-clock profiler frame."""
        profiler = self._profiler
        profiler.push("network", "delay")
        try:
            return self._delay(size_bytes)
        finally:
            profiler.pop()

    def _delay(self, size_bytes: int) -> float:
        """One-way delay for a message of *size_bytes*."""
        cfg = self.config
        delay = cfg.one_way_latency + size_bytes / cfg.bandwidth_bytes_per_sec
        if cfg.jitter:
            delay += self._rng.random() * cfg.jitter
        if cfg.loss_probability:
            # Reliable connection: the NIC retransmits after a timeout;
            # the sender only observes the extra delay. A retransmitted
            # packet is just as likely to be lost as the original, so
            # the number of retries is geometric — and each retry is a
            # fresh wire traversal, so it re-rolls jitter too.
            while self._rng.random() < cfg.loss_probability:
                delay += cfg.retransmit_timeout
                if cfg.jitter:
                    delay += self._rng.random() * cfg.jitter
        return delay

    def transfer_time(self, size_bytes: int) -> float:
        """Pure serialization time for bulk transfers (scans, log reads)."""
        return size_bytes / self.config.bandwidth_bytes_per_sec
