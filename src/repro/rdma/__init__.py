"""Simulated one-sided RDMA fabric (reliable-connection semantics)."""

from repro.rdma.errors import (
    InvalidAddressError,
    LinkRevokedError,
    RdmaError,
    RemoteNodeDownError,
)
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.qp import QueuePair
from repro.rdma.verbs import Verbs

__all__ = [
    "InvalidAddressError",
    "LinkRevokedError",
    "Network",
    "NetworkConfig",
    "QueuePair",
    "RdmaError",
    "RemoteNodeDownError",
    "Verbs",
]
