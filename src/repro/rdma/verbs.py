"""One-sided verb facade used by compute-side code.

Every method posts exactly one verb on the queue pair to the target
memory node and returns the completion :class:`~repro.sim.Event`; the
caller yields on it (or batches several with ``sim.all_of``). Sizes are
accounted so the bandwidth model charges bulk operations (log-region
reads, Baseline scans) realistically.

The compute node can only *read, write, CAS and FAA* remote memory on
the data path; ``ctrl_*`` RPCs exist solely for connection management
and active-link termination, mirroring the paper's assumption of wimpy
memory-side cores (§2.1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.memory.node import LogRecord, OBJECT_HEADER_BYTES
from repro.obs import NOOP_OBS
from repro.rdma.network import Network
from repro.rdma.qp import QueuePair
from repro.sim import Event, Simulator

__all__ = ["Verbs", "VERB_CATEGORIES"]

# Wimpy-core processing time for a control-plane RPC (setup / revoke).
CTRL_RPC_CPU_SECONDS = 2e-6

# Verb kind → cost category, used by the report layer to group the
# round-trip accounting tables. Every kind a QP can post appears here;
# unknown kinds (future verbs) are reported under "other".
VERB_CATEGORIES = {
    "read_object": "data",
    "read_header": "data",
    "read_headers": "data",
    "cas_lock": "data",
    "write_lock": "data",
    "write_object": "data",
    "faa_ticket": "data",
    "cancel_ticket": "data",
    "vote_write": "data",
    "read_vote": "data",
    "write_log": "log",
    "invalidate_log": "log",
    "read_log_region": "log",
    "truncate_log_region": "log",
    "scan_chunk": "data",
    "ctrl_rpc": "ctrl",
    "ctrl_revoke": "ctrl",
    "ctrl_unrevoke": "ctrl",
    "ctrl_register_log_region": "ctrl",
}


class Verbs:
    """Per-compute-node handle over its queue pairs."""

    def __init__(
        self,
        sim: Simulator,
        compute_id: int,
        network: Network,
        memory_nodes: Dict[int, Any],
        obs: Optional[Any] = None,
        sanitizer: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.compute_id = compute_id
        self.network = network
        self.obs = obs if obs is not None else NOOP_OBS
        self.qps: Dict[int, QueuePair] = {
            node_id: QueuePair(
                sim, network, compute_id, node, obs=self.obs, sanitizer=sanitizer
            )
            for node_id, node in memory_nodes.items()
        }

    def _qp(self, memory_node_id: int) -> QueuePair:
        try:
            return self.qps[memory_node_id]
        except KeyError:
            raise KeyError(
                f"compute {self.compute_id} has no QP to memory node {memory_node_id}"
            ) from None

    # -- data-path verbs -----------------------------------------------------

    def read_object(self, node: int, table: int, slot: int) -> Event:
        """READ the full object (lock, version, present, value)."""
        return self._qp(node).post("read_object", (table, slot), 16)

    def read_header(self, node: int, table: int, slot: int) -> Event:
        """READ only the 16B header (lock word + version)."""
        return self._qp(node).post("read_header", (table, slot), 16)

    def read_headers(self, node: int, addresses: Sequence[Tuple[int, int]]) -> Event:
        """Doorbell-batched header read of several objects on one node."""
        return self._qp(node).post(
            "read_headers", (tuple(addresses),), 16 * len(addresses)
        )

    def cas_lock(
        self, node: int, table: int, slot: int, expected: int, desired: int
    ) -> Event:
        """Atomic compare-and-swap on the object's lock word."""
        return self._qp(node).post("cas_lock", (table, slot, expected, desired), 24)

    def write_lock(self, node: int, table: int, slot: int, word: int) -> Event:
        """WRITE the lock word directly (used for unlock)."""
        return self._qp(node).post("write_lock", (table, slot, word), 16)

    def write_object(
        self,
        node: int,
        table: int,
        slot: int,
        version: int,
        value: Any,
        present: bool = True,
        value_size: int = 8,
        signaled: bool = True,
    ) -> Event:
        """WRITE value + version in place (commit-phase update)."""
        return self._qp(node).post(
            "write_object",
            (table, slot, version, value, present),
            OBJECT_HEADER_BYTES + value_size,
            signaled=signaled,
        )

    def faa_ticket(self, node: int, table: int, slot: int, coord_id: int) -> Event:
        """FAA on the ticket word (LOTUS): take a queue ticket.

        Returns ``(ticket, word)`` — the fetched ticket number and the
        post-FAA lock word; ``ticket < 0`` means the slot carries a
        foreign (non-ticket) lock word and the enqueue was refused.
        """
        return self._qp(node).post("faa_ticket", (table, slot, coord_id), 16)

    def cancel_ticket(self, node: int, table: int, slot: int, ticket: int) -> Event:
        """Withdraw a ticket (bounded-wait abort; LOTUS)."""
        return self._qp(node).post("cancel_ticket", (table, slot, ticket), 16)

    def vote_write(
        self,
        node: int,
        table: int,
        slot: int,
        version: int,
        value: Any,
        present: bool,
        shadow: Tuple,
        value_size: int = 8,
        signaled: bool = True,
    ) -> Event:
        """vote1pc apply: WRITE the new image + the per-slot vote shadow.

        The shadow carries ``(coord_id, txn_id, old_version, old_value,
        old_present, manifest)`` — roughly double the object payload on
        the wire, which is the price of skipping the f+1 log write.
        """
        return self._qp(node).post(
            "vote_write",
            (table, slot, version, value, present, shadow),
            OBJECT_HEADER_BYTES + 2 * value_size + 16 * len(shadow[5]) + 32,
            signaled=signaled,
        )

    def read_vote(self, node: int, table: int, slot: int) -> Event:
        """READ one slot's vote shadow (None when clear); vote1pc recovery."""
        return self._qp(node).post("read_vote", (table, slot), 16)

    # -- log verbs --------------------------------------------------------------

    def write_log(
        self, node: int, record: LogRecord, size_bytes: int, signaled: bool = True
    ) -> Event:
        """Append one (possibly coalesced) undo-log record."""
        return self._qp(node).post("write_log", (record,), size_bytes, signaled=signaled)

    def invalidate_log(
        self, node: int, coord_id: int, record_id: int, signaled: bool = True
    ) -> Event:
        """Flip a single log record's valid bit (abort-path truncation)."""
        return self._qp(node).post(
            "invalidate_log", (coord_id, record_id), 16, signaled=signaled
        )

    def read_log_region(self, node: int, coord_id: int) -> Event:
        """READ a coordinator's entire log region in one large verb."""
        return self._qp(node).post("read_log_region", (coord_id,), 16)

    def truncate_log_region(self, node: int, coord_id: int) -> Event:
        """Invalidate the region header (recovery-side truncation)."""
        return self._qp(node).post("truncate_log_region", (coord_id,), 16)

    # -- scan (Baseline recovery only) -------------------------------------------

    def scan_chunk(self, node: int, table: int, start: int, count: int) -> Event:
        """READ *count* raw slots; returns (locked slot list, next index)."""
        return self._qp(node).post("scan_chunk", (table, start, count), 24)

    # -- control plane -------------------------------------------------------------

    def ctrl_rpc(self, node: int, kind: str, args: Tuple) -> Event:
        """Send a control RPC to the memory node's wimpy core.

        Adds a small CPU-processing delay on top of the network cost:
        memory-side cores are slow, which is precisely why they are
        kept off the data path.
        """
        completion = self._qp(node).post(kind, args, 32)
        delayed = Event(self.sim)

        def relay(event: Event) -> None:
            def fire() -> None:
                if event._exception is not None:
                    delayed.fail(event._exception)
                else:
                    delayed.succeed(event._value)

            self.sim.call_at(self.sim.now + CTRL_RPC_CPU_SECONDS, fire)

        completion.add_callback(relay)
        return delayed

    def revoke_link(self, node: int, target_compute_id: int) -> Event:
        """Active-link termination: revoke *target*'s access (Cor1)."""
        return self.ctrl_rpc(node, "ctrl_revoke", (target_compute_id,))

    def restore_link(self, node: int, target_compute_id: int) -> Event:
        return self.ctrl_rpc(node, "ctrl_unrevoke", (target_compute_id,))

    def register_log_region(self, node: int, coord_id: int) -> Event:
        return self.ctrl_rpc(node, "ctrl_register_log_region", (coord_id,))

    # -- introspection ----------------------------------------------------------------

    def posted_verb_count(self) -> int:
        """Total verbs posted across the QPs of this node."""
        return sum(qp.posted_verbs for qp in self.qps.values())
