"""FORD — the state-of-the-art baseline protocol (Zhang et al., FAST'22).

FORD is the published one-sided transactional DKVS Pandora builds on.
Its locks carry **no owner identity**, and its undo logs are written
per object to that object's replicas during execution — *after*
locking, which is the root cause of stray locks (§3.1.1) and of the
Table 1 logging bugs.

``FordProtocol(bugs=BugFlags.published())`` reproduces FORD exactly as
shipped; ``BugFlags.fixed()`` gives the repaired online component used
by the paper's *Baseline* (FORD + Pandora's recovery algorithm adapted
to scan-based lock cleanup).
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.base import ProtocolEngine
from repro.protocol.strategies import (
    AnonymousCasLockStrategy,
    LateUpgradeLoggedCommitStrategy,
    PerObjectLogStrategy,
)
from repro.protocol.types import BugFlags

__all__ = ["FordProtocol"]


class FordProtocol(ProtocolEngine):
    """FORD: anonymous locks + per-object undo logging."""

    name = "ford"
    lock_strategy = AnonymousCasLockStrategy
    log_strategy = PerObjectLogStrategy
    commit_strategy = LateUpgradeLoggedCommitStrategy

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(
            coordinator, bugs if bugs is not None else BugFlags.published()
        )


def ford_factory(bugs: Optional[BugFlags] = None):
    """Engine factory for :class:`~repro.protocol.coordinator.Coordinator`."""

    def factory(coordinator):
        return FordProtocol(coordinator, bugs=bugs)

    return factory
