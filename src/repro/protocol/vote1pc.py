"""Logless one-phase commit ("To Vote Before Decide" adaptation).

The f+1 undo-log write sits on every Pandora commit's critical path.
The vote-1PC design removes it: each replica update is a *vote write*
that carries, next to the new image, a per-slot **vote shadow** — the
undo image plus the transaction's write-set manifest
``((table_id, slot, new_version), ...)``. The commit decision is never
written anywhere; it is *embedded in replica state*:

    a transaction committed iff every manifest address reached its new
    version on all live replicas — exactly the condition under which
    the client could have been acked (the Cor2/Cor3 criterion applied
    to data replicas instead of log copies).

Recovery for a failed coordinator therefore scans for its locked slots
(PILL owner attribution works unchanged — vote1pc uses PILL lock
words), reads any replica's vote shadow, evaluates the manifest, and
rolls the whole write-set forward or restores the shadows' undo
images, then releases the locks conditionally. Shadows are cleared by
the same unlock writes that free the lock word, so steady state stores
no extra durable bytes.

Caveats (documented trade-offs, see docs/PROTOCOLS.md):

* recovery must *scan* for the dead coordinator's locks (no fixed log
  servers to consult), so it costs a keyspace sweep like FORD's
  scan-based cleanup — the price of a logless fast path;
* a transaction interrupted between its first and last vote write is
  rolled back from shadows, which requires at least one replica of
  each written slot to survive (the same f-failure envelope as the
  paper's log replication).
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.base import ProtocolEngine
from repro.protocol.strategies import (
    NoLogStrategy,
    PillCasLockStrategy,
    VoteCommitStrategy,
)
from repro.protocol.types import BugFlags

__all__ = ["Vote1PCProtocol"]


class Vote1PCProtocol(ProtocolEngine):
    """vote1pc: PILL locks + no undo log + shadow-bearing vote writes."""

    name = "vote1pc"
    lock_strategy = PillCasLockStrategy
    log_strategy = NoLogStrategy
    commit_strategy = VoteCommitStrategy

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


def vote1pc_factory(bugs: Optional[BugFlags] = None):
    """Engine factory for :class:`~repro.protocol.coordinator.Coordinator`."""

    def factory(coordinator):
        return Vote1PCProtocol(coordinator, bugs=bugs)

    return factory
