"""Lock-word encoding — the heart of PILL.

A lock is a single 64-bit word mutated only by RDMA CAS:

* bit 63          — locked flag
* bits 32..47     — 16-bit coordinator-id of the owner (PILL, §3.1.2)
* bits 0..31      — owner-local tag (diagnostics; not used for decisions)

FORD's original lock carries **no owner identity** (the word is just
0/LOCKED), which is why its recovery must scan the whole store to find
stray locks. Pandora's entire fast-recovery story reduces to the owner
id being CAS'd in atomically with the lock bit: a failed CAS returns
the current word, the loser checks the embedded owner against the
failed-ids bitset, and steals the lock if the owner is dead.

The owner field's all-ones value (``0xFFFF``) is the anonymous-owner
sentinel, so only ids ``0..0xFFFE`` are encodable: a coordinator id of
``0xFFFF`` would produce locks indistinguishable from FORD's anonymous
words — unattributable, and therefore unstealable and unrecoverable by
PILL. ``MAX_COORD_ID`` is capped one below the sentinel and
``encode_lock`` rejects it outright.

The LOTUS variant stores a *ticket* word in the same slot (bit 62 set):

* bit 63          — locked flag
* bit 62          — ticket flag (distinguishes ticket words)
* bits 32..47     — coordinator-id of the *current holder*
* bits 16..31     — next-ticket counter (FAA target)
* bits 0..15      — now-serving counter

The holder occupies the same owner bits as PILL, so ``owner_of`` /
``is_locked`` attribution (sanitizer, recovery, failed-ids checks)
works unchanged on ticket words. A fully drained queue stores 0 — the
same "free" word every other protocol uses.
"""

from __future__ import annotations

__all__ = [
    "LOCKED_FLAG",
    "TICKET_FLAG",
    "MAX_COORD_ID",
    "ANONYMOUS_OWNER",
    "encode_lock",
    "encode_anonymous_lock",
    "encode_ticket_word",
    "is_locked",
    "is_ticket_word",
    "owner_of",
    "tag_of",
    "serving_of",
    "next_ticket_of",
]

LOCKED_FLAG = 1 << 63
TICKET_FLAG = 1 << 62
_OWNER_SHIFT = 32
_OWNER_MASK = 0xFFFF
_TAG_MASK = 0xFFFFFFFF
_TICKET_MASK = 0xFFFF
_NEXT_SHIFT = 16

# FORD locks have no owner identity; we encode them with this sentinel
# so that `owner_of` is total but recovery cannot attribute them.
ANONYMOUS_OWNER = _OWNER_MASK

# 16-bit ids minus the reserved anonymous sentinel: ids 0..0xFFFE over
# the lifetime of the system (§3.1.2). 0xFFFF == ANONYMOUS_OWNER must
# never be handed to a coordinator — its locks would read as anonymous.
MAX_COORD_ID = _OWNER_MASK - 1


def encode_lock(coord_id: int, tag: int = 0) -> int:
    """Lock word owned by *coord_id* (PILL encoding)."""
    if not 0 <= coord_id <= MAX_COORD_ID:
        if coord_id == ANONYMOUS_OWNER:
            raise ValueError(
                "coordinator id 0xFFFF is the anonymous-owner sentinel; "
                "locks encoded with it would be unattributable to PILL"
            )
        raise ValueError(f"coordinator id {coord_id} out of 16-bit range")
    if not 0 <= tag <= _TAG_MASK:
        raise ValueError(f"tag {tag} out of 32-bit range")
    return LOCKED_FLAG | (coord_id << _OWNER_SHIFT) | tag


def encode_anonymous_lock(tag: int = 0) -> int:
    """FORD-style lock word: locked, but with no usable owner identity."""
    return LOCKED_FLAG | (ANONYMOUS_OWNER << _OWNER_SHIFT) | (tag & _TAG_MASK)


def is_locked(word: int) -> bool:
    return bool(word & LOCKED_FLAG)


def owner_of(word: int) -> int:
    """Owner coordinator-id embedded in a lock word."""
    return (word >> _OWNER_SHIFT) & _OWNER_MASK


def tag_of(word: int) -> int:
    return word & _TAG_MASK


def encode_ticket_word(
    owner: int, serving: int, next_ticket: int, locked: bool = True
) -> int:
    """LOTUS ticket word: holder id + serving/next counters.

    *owner* may be ``ANONYMOUS_OWNER`` only for a transiently
    holder-less word (queue being advanced); encodable coordinator ids
    are capped at ``MAX_COORD_ID`` like PILL words.
    """
    if owner != ANONYMOUS_OWNER and not 0 <= owner <= MAX_COORD_ID:
        raise ValueError(f"coordinator id {owner} out of 16-bit range")
    word = (
        TICKET_FLAG
        | (owner << _OWNER_SHIFT)
        | ((next_ticket & _TICKET_MASK) << _NEXT_SHIFT)
        | (serving & _TICKET_MASK)
    )
    if locked:
        word |= LOCKED_FLAG
    return word


def is_ticket_word(word: int) -> bool:
    return bool(word & TICKET_FLAG)


def serving_of(word: int) -> int:
    """Now-serving counter of a ticket word."""
    return word & _TICKET_MASK


def next_ticket_of(word: int) -> int:
    """Next-ticket counter of a ticket word (the FAA target)."""
    return (word >> _NEXT_SHIFT) & _TICKET_MASK
