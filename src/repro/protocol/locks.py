"""Lock-word encoding — the heart of PILL.

A lock is a single 64-bit word mutated only by RDMA CAS:

* bit 63          — locked flag
* bits 32..47     — 16-bit coordinator-id of the owner (PILL, §3.1.2)
* bits 0..31      — owner-local tag (diagnostics; not used for decisions)

FORD's original lock carries **no owner identity** (the word is just
0/LOCKED), which is why its recovery must scan the whole store to find
stray locks. Pandora's entire fast-recovery story reduces to the owner
id being CAS'd in atomically with the lock bit: a failed CAS returns
the current word, the loser checks the embedded owner against the
failed-ids bitset, and steals the lock if the owner is dead.
"""

from __future__ import annotations

__all__ = [
    "LOCKED_FLAG",
    "MAX_COORD_ID",
    "ANONYMOUS_OWNER",
    "encode_lock",
    "encode_anonymous_lock",
    "is_locked",
    "owner_of",
    "tag_of",
]

LOCKED_FLAG = 1 << 63
_OWNER_SHIFT = 32
_OWNER_MASK = 0xFFFF
_TAG_MASK = 0xFFFFFFFF

# 16-bit ids: 64K coordinators over the lifetime of the system (§3.1.2).
MAX_COORD_ID = _OWNER_MASK

# FORD locks have no owner identity; we encode them with this sentinel
# so that `owner_of` is total but recovery cannot attribute them.
ANONYMOUS_OWNER = _OWNER_MASK


def encode_lock(coord_id: int, tag: int = 0) -> int:
    """Lock word owned by *coord_id* (PILL encoding)."""
    if not 0 <= coord_id <= MAX_COORD_ID:
        raise ValueError(f"coordinator id {coord_id} out of 16-bit range")
    if not 0 <= tag <= _TAG_MASK:
        raise ValueError(f"tag {tag} out of 32-bit range")
    return LOCKED_FLAG | (coord_id << _OWNER_SHIFT) | tag


def encode_anonymous_lock(tag: int = 0) -> int:
    """FORD-style lock word: locked, but with no usable owner identity."""
    return LOCKED_FLAG | (ANONYMOUS_OWNER << _OWNER_SHIFT) | (tag & _TAG_MASK)


def is_locked(word: int) -> bool:
    return bool(word & LOCKED_FLAG)


def owner_of(word: int) -> int:
    """Owner coordinator-id embedded in a lock word."""
    return (word >> _OWNER_SHIFT) & _OWNER_MASK


def tag_of(word: int) -> int:
    return word & _TAG_MASK
