"""Pandora — the paper's contribution (§3).

Differences from FORD, all inherited from the shared engine's hooks:

* **PILL** — lock words embed the owner's 16-bit coordinator-id; on a
  CAS failure the loser checks the owner against the failed-ids bitset
  and *steals* stray locks with a second CAS (§3.1.2). Reads treat
  stray locks as unlocked.
* **Coalesced post-lock logging** — one undo record covering the whole
  write-set, written to the coordinator's f+1 fixed log servers after
  every lock is held; the commit decision waits for the acks, and an
  abort truncates the records *before* unlocking (§3.1.4-§3.1.5).
* **All Table 1 bugs fixed** by default. Bug flags can be re-enabled
  individually for the litmus framework (the C1 bugs were present in
  pre-validation Pandora too, per Table 1).
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.base import ProtocolEngine
from repro.protocol.strategies import (
    CoalescedLogStrategy,
    LoggedCommitStrategy,
    PillCasLockStrategy,
)
from repro.protocol.types import BugFlags

__all__ = ["PandoraProtocol"]


class PandoraProtocol(ProtocolEngine):
    """Pandora: PILL locks + coalesced post-lock logging."""

    name = "pandora"
    lock_strategy = PillCasLockStrategy
    log_strategy = CoalescedLogStrategy
    commit_strategy = LoggedCommitStrategy

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


def pandora_factory(bugs: Optional[BugFlags] = None):
    """Engine factory for :class:`~repro.protocol.coordinator.Coordinator`."""

    def factory(coordinator):
        return PandoraProtocol(coordinator, bugs=bugs)

    return factory
