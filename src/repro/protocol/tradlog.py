"""The "traditional logging" alternative evaluated in §6.1 / §6.2.1.

Instead of PILL, this scheme makes locks recoverable by writing an
explicit *lock-intent* record to the coordinator's log servers before
every lock CAS — one extra blocking round trip per lock. Recovery can
then release a failed coordinator's locks from its lock logs without
scanning the store, but:

* recovery is ~2x slower than Pandora's (two log families to process),
* steady-state throughput drops by up to 35% on write-heavy workloads
  (SmallBank), because the extra round trip sits on the critical path
  of every write.

Locks are anonymous (as in FORD), but each lock-intent record stores
the exact lock *word* that was CAS'd in, so recovery releases a lock
only when the stored word still matches (an owner check by value).
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.base import ProtocolEngine
from repro.protocol.strategies import (
    AnonymousCasLockStrategy,
    LateUpgradeLoggedCommitStrategy,
    LockIntentLogStrategy,
)
from repro.protocol.types import BugFlags

__all__ = ["TradLogProtocol"]


class TradLogProtocol(ProtocolEngine):
    """FORD-style engine plus a pre-lock ownership log round trip."""

    name = "tradlog"
    lock_strategy = AnonymousCasLockStrategy
    log_strategy = LockIntentLogStrategy
    commit_strategy = LateUpgradeLoggedCommitStrategy

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


def tradlog_factory(bugs: Optional[BugFlags] = None):
    """Engine factory for :class:`~repro.protocol.coordinator.Coordinator`."""

    def factory(coordinator):
        return TradLogProtocol(coordinator, bugs=bugs)

    return factory
