"""Transaction protocols: the shared OCC engine and its three variants."""

from repro.protocol.base import ProtocolEngine, Txn
from repro.protocol.coordinator import Coordinator, CoordinatorConfig, CoordinatorStats
from repro.protocol.ford import FordProtocol, ford_factory
from repro.protocol.locks import (
    encode_anonymous_lock,
    encode_lock,
    is_locked,
    owner_of,
    tag_of,
)
from repro.protocol.pandora import PandoraProtocol, pandora_factory
from repro.protocol.tradlog import TradLogProtocol, tradlog_factory
from repro.protocol.types import (
    AbortReason,
    BugFlags,
    TxnAbort,
    TxnOutcome,
    WriteIntent,
)

__all__ = [
    "AbortReason",
    "BugFlags",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorStats",
    "FordProtocol",
    "PandoraProtocol",
    "ProtocolEngine",
    "TradLogProtocol",
    "Txn",
    "TxnAbort",
    "TxnOutcome",
    "WriteIntent",
    "encode_anonymous_lock",
    "encode_lock",
    "ford_factory",
    "is_locked",
    "owner_of",
    "pandora_factory",
    "tag_of",
    "tradlog_factory",
]
