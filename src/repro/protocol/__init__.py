"""Transaction protocols: the shared OCC engine and the protocol zoo."""

from repro.protocol.base import ProtocolEngine, Txn
from repro.protocol.coordinator import Coordinator, CoordinatorConfig, CoordinatorStats
from repro.protocol.ford import FordProtocol, ford_factory
from repro.protocol.legacy import LegacyProtocolEngine, legacy_factory
from repro.protocol.locks import (
    encode_anonymous_lock,
    encode_lock,
    encode_ticket_word,
    is_locked,
    is_ticket_word,
    owner_of,
    tag_of,
)
from repro.protocol.lotus import LotusProtocol, lotus_factory
from repro.protocol.pandora import PandoraProtocol, pandora_factory
from repro.protocol.strategies import (
    CommitStrategy,
    LockStrategy,
    LogStrategy,
)
from repro.protocol.tradlog import TradLogProtocol, tradlog_factory
from repro.protocol.types import (
    AbortReason,
    BugFlags,
    TxnAbort,
    TxnOutcome,
    WriteIntent,
)
from repro.protocol.vote1pc import Vote1PCProtocol, vote1pc_factory

__all__ = [
    "AbortReason",
    "BugFlags",
    "CommitStrategy",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorStats",
    "FordProtocol",
    "LegacyProtocolEngine",
    "LockStrategy",
    "LogStrategy",
    "LotusProtocol",
    "PandoraProtocol",
    "ProtocolEngine",
    "TradLogProtocol",
    "Txn",
    "TxnAbort",
    "TxnOutcome",
    "Vote1PCProtocol",
    "WriteIntent",
    "encode_anonymous_lock",
    "encode_lock",
    "encode_ticket_word",
    "ford_factory",
    "is_locked",
    "is_ticket_word",
    "legacy_factory",
    "lotus_factory",
    "owner_of",
    "pandora_factory",
    "tag_of",
    "tradlog_factory",
    "vote1pc_factory",
]
