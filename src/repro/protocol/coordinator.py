"""The transaction coordinator: the compute-side worker loop.

Each coordinator owns a unique 16-bit coordinator-id (allocated by the
failure detector, §3.1.2), drives one transaction at a time through its
protocol engine, and retries aborted transactions with a small backoff.
A compute server runs many coordinators; crashing the server kills all
of them mid-protocol, which is how stray locks and stray transactions
come to exist.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Callable, Generator, Optional

from repro.obs import NOOP_OBS
from repro.protocol.types import AbortReason, TxnOutcome
from repro.rdma.errors import LinkRevokedError, RdmaError
from repro.sim import Event, Interrupt
from repro.util.stats import Histogram

__all__ = ["CoordinatorStats", "CoordinatorConfig", "Coordinator"]


class CoordinatorStats:
    """Counters exposed by each coordinator (merged by the harness)."""

    def __init__(self) -> None:
        self.commits = 0
        self.aborts = 0
        self.attempts = 0
        self.locks_stolen = 0
        # Bounded steal-CAS retries after losing to *another* stray
        # word (stray-to-stray races during mass failover).
        self.steal_retries = 0
        self.abort_reasons: Counter = Counter()
        self.latency = Histogram(min_value=1e-7, max_value=10.0)

    def merge(self, other: "CoordinatorStats") -> None:
        """Fold another set of coordinator counters into this one."""
        self.commits += other.commits
        self.aborts += other.aborts
        self.attempts += other.attempts
        self.locks_stolen += other.locks_stolen
        self.steal_retries += other.steal_retries
        self.abort_reasons.update(other.abort_reasons)
        self.latency.merge(other.latency)


class CoordinatorConfig:
    """Retry and pacing policy for the worker loop."""

    def __init__(
        self,
        max_attempts: int = 64,
        backoff_base: float = 2e-6,
        backoff_cap: float = 100e-6,
        abandon_on_conflict: bool = False,
        think_time: float = 0.0,
        nvm_flush: bool = False,
        warm_address_cache: bool = True,
    ) -> None:
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # True = give up after the first abort and move to the next
        # request (the "abort" option of §6.4); False = retry the same
        # transaction until it commits or attempts run out.
        self.abandon_on_conflict = abandon_on_conflict
        self.think_time = think_time
        # §7: flush commit writes into NVM before acking the client.
        self.nvm_flush = nvm_flush
        # False models a cold FORD-style address cache: the first
        # access to each object pays an extra hash-index probe read.
        self.warm_address_cache = warm_address_cache


class Coordinator:
    """One transaction coordinator (one worker thread in the paper)."""

    def __init__(
        self,
        node,
        coord_id: int,
        engine_factory: Callable[["Coordinator"], Any],
        workload,
        rng: random.Random,
        config: Optional[CoordinatorConfig] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.verbs = node.verbs
        self.catalog = node.catalog
        self.coord_id = coord_id
        self.workload = workload
        self.rng = rng
        self.config = config or CoordinatorConfig()
        self.faults = node.faults
        self.stats = CoordinatorStats()
        # Observability facade shared by the whole deployment; the
        # engine captures it at construction, so set it first.
        self.obs = getattr(node.verbs, "obs", None) or NOOP_OBS
        self.engine = engine_factory(self)
        self.process = None
        self._txn_seq = 0
        self._on_commit: Optional[Callable[[float], None]] = None
        # Optional list collecting committed-transaction footprints
        # (txn id, read versions, write versions) for the
        # serializability checker.
        self.history_sink: Optional[list] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, on_commit: Optional[Callable[[float], None]] = None) -> None:
        """Spawn the worker-loop process."""
        self._on_commit = on_commit
        self.process = self.sim.process(
            self._run(), name=f"coordinator-{self.coord_id}"
        )

    def stop(self) -> None:
        """Kill the worker loop (crash-stop)."""
        if self.process is not None:
            self.process.kill()
            self.process = None

    # -- engine callbacks ------------------------------------------------------

    def on_commit_ack(self, tx) -> None:
        """Client notified of commit (after replica updates, §2.3)."""
        self.stats.commits += 1
        self.obs.on_outcome(self.engine.name, "commit")
        if self._on_commit is not None:
            self._on_commit(self.sim.now)
        if self.history_sink is not None:
            reads = {
                address: entry.version
                for address, entry in tx.read_set.items()
                if address not in tx.write_set
            }
            writes = {
                address: intent.new_version
                for address, intent in tx.write_set.items()
                if intent.locked and intent.applied
            }
            rmw_reads = {
                address: intent.old_version
                for address, intent in tx.write_set.items()
                if intent.locked and intent.applied
            }
            self.history_sink.append(
                (tx.txn_id, self.sim.now, reads, rmw_reads, writes)
            )

    def on_abort(self, tx, reason: str) -> None:
        self.stats.aborts += 1
        self.stats.abort_reasons[reason] += 1
        self.obs.on_outcome(self.engine.name, f"abort:{reason}")

    # -- worker loop ----------------------------------------------------------------

    def next_txn_id(self) -> int:
        """Unique txn id: (coordinator-id << 32) | sequence."""
        self._txn_seq += 1
        return (self.coord_id << 32) | self._txn_seq

    def _run(self) -> Generator[Event, Any, None]:
        # Register this coordinator's log region at its f+1 log servers
        # (control path; done once at spawn).
        registrations = [
            self.verbs.register_log_region(node_id, self.coord_id)
            for node_id in self.catalog.log_nodes(self.coord_id)
        ]
        yield self.sim.all_of(registrations)

        while True:
            yield from self.node.wait_if_paused()
            logic = self.workload.next_transaction(self.rng)
            try:
                yield from self.run_transaction(logic)
            except Interrupt:
                # A reconfiguration interrupt delivered after the
                # attempt it targeted already resolved (the send and
                # the delivery straddle other same-timestep callbacks).
                # There is nothing left to recover.
                continue
            except LinkRevokedError:
                self.node.on_fenced(self)
                return
            except Exception:
                # An unexpected error escaping a worker would otherwise
                # end this process *silently* — with any locks the
                # in-flight transaction held still set under a live
                # coordinator id, unstealable by PILL forever. Convert
                # it into the one failure mode the system is built to
                # survive: fail-stop the whole node so recovery fences
                # it and reclaims everything it held (§2.1 crash-stop).
                # call_soon: crash() kills this very process, and a
                # running generator cannot close itself.
                self.sim.call_soon(self.node.crash)
                return
            if self.config.think_time:
                yield self.sim.timeout(self.config.think_time)

    def run_transaction(self, logic) -> Generator[Event, Any, TxnOutcome]:
        """Run one request to completion, retrying aborted attempts."""
        start = self.sim.now
        attempts = 0
        outcome = TxnOutcome(committed=False, reason=AbortReason.LOCK_CONFLICT)
        while attempts < self.config.max_attempts:
            attempts += 1
            self.stats.attempts += 1
            txn_id = self.next_txn_id()
            try:
                outcome = yield from self.engine.run_attempt(logic, txn_id, attempts)
            except Interrupt as interrupt:
                # recover_interrupted guards every await per-event; if it
                # still dies, _run converts the escape into a node
                # crash-stop and the RecoveryManager reclaims the locks.
                # protolint: disable=PROTO007 -- escape crash-stops the node; RecoveryManager reclaims
                outcome = yield from self.engine.recover_interrupted(interrupt.cause)
            except LinkRevokedError:
                # We were (perhaps falsely) declared failed and fenced
                # off (Cor1). This coordinator must stop issuing
                # transactions; the node-level handler takes over.
                self.node.on_fenced(self)
                return TxnOutcome(
                    committed=False,
                    reason=AbortReason.LINK_REVOKED,
                    start_time=start,
                    end_time=self.sim.now,
                )
            except RdmaError:
                # Same hand-off as the Interrupt arm above.
                # protolint: disable=PROTO007 -- escape crash-stops the node; RecoveryManager reclaims
                outcome = yield from self.engine.recover_interrupted(None)
            if outcome.committed:
                break
            if outcome.reason in (
                AbortReason.USER,
                AbortReason.DUPLICATE_KEY,
                AbortReason.NOT_FOUND,
            ):
                # Application-level aborts are final: retrying cannot
                # change the outcome (e.g. insufficient funds).
                break
            if self.config.abandon_on_conflict:
                break
            yield from self.node.wait_if_paused()
            backoff = min(
                self.config.backoff_cap,
                self.config.backoff_base * (2 ** min(attempts - 1, 6)),
            )
            yield self.sim.timeout(backoff * (0.5 + self.rng.random()))
        outcome.attempts = attempts
        outcome.start_time = start
        outcome.end_time = self.sim.now
        if outcome.committed:
            self.stats.latency.add(outcome.latency)
        return outcome
