"""Pluggable lock / log / commit strategies — the protocol-zoo axes.

The shared OCC engine (:mod:`repro.protocol.base`) used to select its
variant behaviour through five boolean class flags
(``pill_enabled`` / ``coalesced_logging`` / ``per_object_logging`` /
``pre_lock_logging`` / ``late_upgrade_check``) branched throughout the
hot path. Every protocol is really a point in a three-axis design
space, so the flags are now three strategy objects plugged into the
engine:

* :class:`LockStrategy` — the lock-word format and the write-lock
  acquisition flow (CAS-word anonymous / CAS-word PILL / LOTUS ticket
  queue),
* :class:`LogStrategy` — undo-record placement and timing (none /
  coalesced f+1 / per-object / coalesced + pre-lock lock-intent),
* :class:`CommitStrategy` — what an apply write carries and when the
  upgrade re-check runs (logged commit / late-upgrade logged commit /
  logless vote write).

The original three protocols are re-expressed as triples with
bit-identical behaviour (pinned by
``tests/integration/test_strategy_parity.py`` against the frozen
:mod:`repro.protocol.legacy` engine):

=========  ======================  ====================  ==========================
protocol   lock                    log                   commit
=========  ======================  ====================  ==========================
pandora    PillCasLockStrategy     CoalescedLogStrategy  LoggedCommitStrategy
ford       AnonymousCasLock...     PerObjectLogStrategy  LateUpgradeLoggedCommit...
tradlog    AnonymousCasLock...     LockIntentLog...      LateUpgradeLoggedCommit...
lotus      TicketLockStrategy      CoalescedLogStrategy  LoggedCommitStrategy
vote1pc    PillCasLockStrategy     NoLogStrategy         VoteCommitStrategy
=========  ======================  ====================  ==========================

Engine-level bug flags (Table 1) stay on the engine: they model *bugs*
in a given protocol's implementation, not protocol design points. The
two per-object logging bugs ride inside :class:`PerObjectLogStrategy`
because they only exist on that axis.

Strategies hold a back-reference to their engine and call through
``engine._is_stray`` / ``engine._post_coalesced_log``-style hooks where
one exists, so engine subclasses that override those hooks (the
mutation harness's seeded-bug engines do) still intercept strategy
behaviour.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.memory.node import LogRecord
from repro.protocol.locks import (
    ANONYMOUS_OWNER,
    encode_anonymous_lock,
    encode_lock,
    is_locked,
    is_ticket_word,
    owner_of,
    serving_of,
)
from repro.protocol.types import (
    OP_DELETE,
    OP_INSERT,
    AbortReason,
    WriteIntent,
)
from repro.rdma.errors import RdmaError
from repro.sim import Event

__all__ = [
    "STEAL_RETRY_LIMIT",
    "TICKET_POLL_LIMIT",
    "LockStrategy",
    "CasLockStrategy",
    "PillCasLockStrategy",
    "AnonymousCasLockStrategy",
    "TicketLockStrategy",
    "LogStrategy",
    "NoLogStrategy",
    "CoalescedLogStrategy",
    "PerObjectLogStrategy",
    "LockIntentLogStrategy",
    "CommitStrategy",
    "LoggedCommitStrategy",
    "LateUpgradeLoggedCommitStrategy",
    "VoteCommitStrategy",
]

# Bound on steal-CAS retries when the word keeps resolving to yet
# another dead owner (stray-to-stray races during mass failover).
STEAL_RETRY_LIMIT = 4

# Bound on ticket-queue polls before a waiter cancels its ticket and
# aborts the attempt: queueing write locks can deadlock where
# abort-on-conflict cannot, so the wait must not be open-ended.
TICKET_POLL_LIMIT = 32


# ---------------------------------------------------------------------------
# Lock strategies
# ---------------------------------------------------------------------------

class LockStrategy:
    """Owns the lock-word format and the write-lock acquisition flow."""

    # Owner-attributable words: reads/validation pass stray locks and
    # recovery can release by owner id (PILL property, §3.1.2).
    pill = False
    # LOTUS ticket-queue words (FAA enqueue, server-side advance).
    ticket_based = False

    def __init__(self, engine) -> None:
        self.engine = engine

    def lock_word(self, tag: int) -> int:
        """The word a CAS-acquire installs (tag from the engine counter)."""
        raise NotImplementedError

    def is_stray(self, word: int) -> bool:
        """Is this lock owned by a recovered-failed coordinator?"""
        return False

    def _owner_is_failed(self, word: int) -> bool:
        if not is_locked(word):
            return False
        owner = owner_of(word)
        if owner == ANONYMOUS_OWNER:
            return False
        return owner in self.engine.coordinator.node.failed_ids

    def acquire(
        self, tx, intent: WriteIntent
    ) -> Generator[Event, Any, None]:
        """Lock + read one write-set object (runs inside ``_acquire``).

        An RdmaError escaping here is converted to a LINK_REVOKED
        ``lock_result`` by the engine's ``_acquire`` guard; the
        try/except keeps that hand-off explicit for the path analyzer.
        """
        try:
            yield from self._acquire_flow(tx, intent)
        except RdmaError:
            raise

    def _acquire_flow(
        self, tx, intent: WriteIntent
    ) -> Generator[Event, Any, None]:
        raise NotImplementedError


class TicketLockStrategy(LockStrategy):
    """LOTUS: FAA ticket-queue words owned by the lock server.

    Acquisition enqueues with one FAA; the lock server grants in ticket
    order, skipping cancelled tickets and — via the Cor4-pushed
    failed-ids bitset — tickets whose waiter died in the queue. A dead
    *holder* is skipped client-side: any waiter that observes a failed
    holder posts a CAS-to-0 conditioned on the full word, which the
    lock server executes as a queue advance (the queue-aware analogue
    of a PILL steal).

    Defined before :class:`CasLockStrategy` on purpose: the protocol
    linter keys method models by bare name (last definition wins), and
    the CAS flow is the one that must stay visible as the PROTO005
    subject.
    """

    pill = True
    ticket_based = True

    def lock_word(self, tag: int) -> int:
        raise NotImplementedError(
            "ticket words are minted server-side by faa_ticket"
        )

    def is_stray(self, word: int) -> bool:
        return self._owner_is_failed(word)

    def _acquire_flow(
        self, tx, intent: WriteIntent
    ) -> Generator[Event, Any, None]:
        engine = self.engine
        table_id, slot = intent.table_id, intent.slot
        primary = engine.placement.primary(table_id, slot)
        tx.trace.focus("lock")
        yield from engine._resolve_address(table_id, slot, primary)

        posted_speculatively = engine.log.post_speculative(tx, intent)

        tx.trace.focus("lock")
        faa_event = engine.verbs.faa_ticket(primary, table_id, slot, engine.coord_id)
        read_event = engine.verbs.read_object(primary, table_id, slot)
        checkpoint = engine._cp("lock_posted")
        if checkpoint is not None:
            yield checkpoint
        ticket, word = yield faa_event
        lock, version, present, value = yield read_event
        if ticket < 0:
            # The slot carries a non-ticket word (foreign lock format):
            # the server refused the enqueue.
            tx.trace.lock_event("conflict", table_id, slot, engine.sim.now)
            intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
            return
        ticket &= 0xFFFF

        polls = 0
        while not (is_ticket_word(word) and serving_of(word) == ticket):
            if not is_ticket_word(word):
                # The queue vanished under us (e.g. a memory restore
                # reset the word): our ticket is gone; retry the txn.
                tx.trace.lock_event("conflict", table_id, slot, engine.sim.now)
                intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                return
            polls += 1
            if polls > TICKET_POLL_LIMIT:
                # Bounded wait (deadlock mitigation): cancel the ticket
                # and convert to the protocol's conflict abort.
                tx.trace.focus("lock")
                yield engine.verbs.cancel_ticket(primary, table_id, slot, ticket)
                tx.trace.lock_event("conflict", table_id, slot, engine.sim.now)
                intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                return
            if self._owner_is_failed(word):
                # Queue-aware steal: the holder died. A CAS conditioned
                # on the observed word asks the server to advance past
                # it (and past any dead waiters, via failed-ids).
                tx.trace.lock_event("steal", table_id, slot, engine.sim.now)
                tx.trace.focus("lock")
                observed = yield engine.verbs.cas_lock(
                    primary, table_id, slot, word, 0
                )
                if observed == word:
                    engine.coordinator.stats.locks_stolen += 1
                else:
                    # Lost the advance race; re-check the fresher word.
                    word = observed
                    continue
            tx.trace.focus("lock")
            word, _hversion, _hpresent = yield engine.verbs.read_header(
                primary, table_id, slot
            )

        if polls:
            # The pipelined read raced the queue wait; re-read the
            # image now that we hold the lock.
            tx.trace.focus("lock")
            lock, version, present, value = yield engine.verbs.read_object(
                primary, table_id, slot
            )

        intent.locked = True
        intent.lock_node = primary
        intent.old_version = version
        intent.old_value = value
        intent.old_present = present
        tx.trace.lock_event("acquired", table_id, slot, engine.sim.now)
        checkpoint = engine._cp("locked")
        if checkpoint is not None:
            yield checkpoint

        if (
            intent.expected_version is not None
            and version != intent.expected_version
            and not engine.commit.late_upgrade
        ):
            intent.lock_result = (False, AbortReason.UPGRADE_VERSION)
            return
        if intent.kind == OP_INSERT and present:
            intent.lock_result = (False, AbortReason.DUPLICATE_KEY)
            return
        if intent.kind == OP_DELETE and not present:
            intent.lock_result = (False, AbortReason.NOT_FOUND)
            return

        engine.log.post_locked(tx, intent, posted_speculatively)
        intent.lock_result = (True, "")


class CasLockStrategy(LockStrategy):
    """Shared CAS-word acquisition: one CAS pipelined with the read."""

    def _acquire_flow(
        self, tx, intent: WriteIntent
    ) -> Generator[Event, Any, None]:
        engine = self.engine
        table_id, slot = intent.table_id, intent.slot
        primary = engine.placement.primary(table_id, slot)
        tx.trace.focus("lock")
        yield from engine._resolve_address(table_id, slot, primary)
        desired = engine._lock_word()

        yield from engine.log.pre_lock(tx, intent, desired)

        posted_speculatively = engine.log.post_speculative(tx, intent)

        tx.trace.focus("lock")
        cas_event = engine.verbs.cas_lock(primary, table_id, slot, 0, desired)
        read_event = engine.verbs.read_object(primary, table_id, slot)
        checkpoint = engine._cp("lock_posted")
        if checkpoint is not None:
            yield checkpoint
        old_word = yield cas_event
        lock, version, present, value = yield read_event

        if old_word != 0:
            if engine._is_stray(old_word):
                # PILL steal: the owner is a recovered-failed
                # coordinator; a second CAS takes the lock over (§3.1.2).
                tx.trace.lock_event("steal", table_id, slot, engine.sim.now)
                tx.trace.focus("lock")
                second = yield engine.verbs.cas_lock(
                    primary, table_id, slot, old_word, desired
                )
                retries = 0
                while (
                    second != old_word
                    and engine._is_stray(second)
                    and retries < STEAL_RETRY_LIMIT
                ):
                    # Stray-to-stray race (mass failover): the word we
                    # lost to belongs to *another* dead coordinator —
                    # aborting here would leave the lock stranded until
                    # some later txn retries the whole attempt. Retry
                    # the steal against the new stray word instead.
                    retries += 1
                    engine.coordinator.stats.steal_retries += 1
                    tx.trace.lock_event(
                        "steal_retry", table_id, slot, engine.sim.now
                    )
                    tx.trace.focus("lock")
                    old_word = second
                    second = yield engine.verbs.cas_lock(
                        primary, table_id, slot, old_word, desired
                    )
                if second != old_word:
                    tx.trace.lock_event(
                        "steal_lost", table_id, slot, engine.sim.now
                    )
                    intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                    return
                engine.coordinator.stats.locks_stolen += 1
                tx.trace.focus("lock")
                lock, version, present, value = yield engine.verbs.read_object(
                    primary, table_id, slot
                )
            else:
                tx.trace.lock_event("conflict", table_id, slot, engine.sim.now)
                intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                return

        intent.locked = True
        intent.lock_node = primary
        intent.old_version = version
        intent.old_value = value
        intent.old_present = present
        tx.trace.lock_event("acquired", table_id, slot, engine.sim.now)
        checkpoint = engine._cp("locked")
        if checkpoint is not None:
            yield checkpoint

        if (
            intent.expected_version is not None
            and version != intent.expected_version
            and not engine.commit.late_upgrade
        ):
            # Read-then-write upgrade raced with another writer. FORD
            # defers this abort to validation (after logging).
            intent.lock_result = (False, AbortReason.UPGRADE_VERSION)
            return
        if intent.kind == OP_INSERT and present:
            intent.lock_result = (False, AbortReason.DUPLICATE_KEY)
            return
        if intent.kind == OP_DELETE and not present:
            intent.lock_result = (False, AbortReason.NOT_FOUND)
            return

        engine.log.post_locked(tx, intent, posted_speculatively)
        intent.lock_result = (True, "")


class PillCasLockStrategy(CasLockStrategy):
    """PILL: owner-id-embedded words, strays stolen via a second CAS."""

    pill = True

    def lock_word(self, tag: int) -> int:
        return encode_lock(self.engine.coord_id, tag)

    def is_stray(self, word: int) -> bool:
        return self._owner_is_failed(word)


class AnonymousCasLockStrategy(CasLockStrategy):
    """FORD-style: no owner identity; conflicts always abort."""

    def lock_word(self, tag: int) -> int:
        return encode_anonymous_lock(tag)


# ---------------------------------------------------------------------------
# Log strategies
# ---------------------------------------------------------------------------

class LogStrategy:
    """Owns undo-record placement and timing. The base class posts
    nothing — it doubles as the logless strategy."""

    coalesced = False
    per_object = False
    pre_lock_intent = False

    def __init__(self, engine) -> None:
        self.engine = engine

    def pre_lock(self, tx, intent: WriteIntent, lock_word: int):
        """Pre-CAS hook, yielded from inside the acquire flow."""
        return ()

    def post_speculative(self, tx, intent: WriteIntent) -> bool:
        """Post the undo record before the CAS outcome is known
        (Table 1 "logging without locking" bug hook)."""
        return False

    def post_locked(
        self, tx, intent: WriteIntent, posted_speculatively: bool
    ) -> None:
        """Per-object hook once the lock is held and checks passed."""

    def post_object_log(
        self, tx, intent: WriteIntent, speculative: bool = False
    ) -> None:
        """Engine back-compat shim target; only per-object logs post."""

    def post_barrier(self, tx) -> None:
        """Write-set-wide hook after the lock barrier."""


class NoLogStrategy(LogStrategy):
    """vote1pc: no undo records — replica state (lock word + vote
    shadow) carries everything recovery needs (logless 1PC)."""


class CoalescedLogStrategy(LogStrategy):
    """Pandora §3.1.4: one record covering the whole write-set, to the
    f+1 fixed log servers, posted after all locks are held
    (lock-to-log order); the decision point waits for the acks."""

    coalesced = True

    def post_barrier(self, tx) -> None:
        engine = self.engine
        if not tx.write_set:
            return
        tx.trace.focus("log")
        entries = tuple(
            intent.log_entry()
            for intent in tx.write_set.values()
            if intent.locked
        )
        if not entries:
            return
        value_sizes = {
            spec.table_id: spec.value_size
            for spec in engine.catalog.tables.values()
        }
        for node in engine.catalog.log_nodes(engine.coord_id):
            record = LogRecord(
                coord_id=engine.coord_id, txn_id=tx.txn_id, entries=entries
            )
            size = record.size_bytes(value_sizes)
            ack = engine.verbs.write_log(node, record, size)
            tx.log_acks.append(ack)
            engine._remember_log_copy(tx, node, ack)


class PerObjectLogStrategy(LogStrategy):
    """FORD-style: undo-log each object to its replicas at lock time.

    Both Table 1 logging bugs live on this axis: "logging without
    locking" (speculative post before the CAS outcome) and "missing
    insert log" (inserts skip their undo record).
    """

    per_object = True

    def post_speculative(self, tx, intent: WriteIntent) -> bool:
        engine = self.engine
        if not (
            engine.bugs.log_without_lock
            and intent.expected_version is not None
        ):
            return False
        # BUG (Table 1, "Logging without locking"): in a corner case
        # FORD posts the undo log — built from the earlier read's image
        # — before the CAS outcome is known.
        self.post_object_log(tx, intent, speculative=True)
        return True

    def post_locked(
        self, tx, intent: WriteIntent, posted_speculatively: bool
    ) -> None:
        engine = self.engine
        if posted_speculatively:
            return
        if engine.bugs.missing_insert_log and intent.kind == OP_INSERT:
            return
        self.post_object_log(tx, intent)

    def post_object_log(
        self, tx, intent: WriteIntent, speculative: bool = False
    ) -> None:
        """Undo-log one object to each of its replicas.

        A *speculative* log (the "logging without locking" bug) is
        posted before the CAS outcome is known, so its undo image
        comes from the transaction's earlier read of the object.
        """
        engine = self.engine
        tx.trace.focus("log")
        if speculative:
            cached = tx.read_set.get((intent.table_id, intent.slot))
            if cached is None:
                return
            entry = (
                intent.table_id,
                intent.slot,
                intent.key,
                cached.version,
                cached.version + 1,
                cached.value,
                intent.new_value,
                cached.present,
                intent.new_present,
            )
        else:
            entry = intent.log_entry()
        record_template_entries = (entry,)
        for node in engine.placement.replicas(intent.table_id, intent.slot):
            record = LogRecord(
                coord_id=engine.coord_id,
                txn_id=tx.txn_id,
                entries=record_template_entries,
            )
            size = record.size_bytes(
                {intent.table_id: engine._log_value_size(intent.table_id)}
            )
            ack = engine.verbs.write_log(node, record, size)
            tx.log_acks.append(ack)
            engine._remember_log_copy(tx, node, ack)


class LockIntentLogStrategy(CoalescedLogStrategy):
    """Traditional scheme (§6.1): coalesced undo logging plus an extra
    *lock-intent* record written before every lock CAS — one blocking
    round trip recording the exact word about to be installed."""

    pre_lock_intent = True

    def pre_lock(self, tx, intent: WriteIntent, lock_word: int):
        tx.trace.focus("log")
        yield from self.engine._write_lock_log(intent, lock_word)


# ---------------------------------------------------------------------------
# Commit strategies
# ---------------------------------------------------------------------------

class CommitStrategy:
    """Owns what an apply write carries and the upgrade-check timing."""

    # FORD defers the read-then-write version re-check to validation
    # (it validates "all objects in its read-set", §2.3) — i.e. *after*
    # undo logs were written. Pandora enforces the check at lock time,
    # before anything is logged (lock-to-log order, §3.1.5).
    late_upgrade = False
    # No durable decision record: the decision is embedded in replica
    # state (vote1pc).
    logless = False

    def __init__(self, engine) -> None:
        self.engine = engine

    def post_apply(
        self, tx, intent: WriteIntent, node: int, value_size: int
    ) -> Event:
        """Post one replica update for a locked intent; returns the ack."""
        return self.engine.verbs.write_object(
            node,
            intent.table_id,
            intent.slot,
            intent.new_version,
            intent.new_value,
            intent.new_present,
            value_size=value_size,
        )


class LoggedCommitStrategy(CommitStrategy):
    """Classic commit: the decision is the durable undo-log state; the
    decision point (run_attempt) waited for the f+1 log acks before any
    in-place update."""


class LateUpgradeLoggedCommitStrategy(LoggedCommitStrategy):
    """FORD/tradlog: logged commit with the deferred upgrade re-check."""

    late_upgrade = True


class VoteCommitStrategy(CommitStrategy):
    """Logless one-phase commit ("To Vote Before Decide"): each replica
    update carries its own undo image and the txn's write-set manifest
    in a per-slot vote shadow, skipping the f+1 log write entirely.
    Recovery re-derives the decision from replica state: roll forward
    iff every manifest address reached its new version on all live
    replicas (the client could only have acked in that case)."""

    logless = True

    def post_apply(
        self, tx, intent: WriteIntent, node: int, value_size: int
    ) -> Event:
        engine = self.engine
        shadow = (
            engine.coord_id,
            tx.txn_id,
            intent.old_version,
            intent.old_value,
            intent.old_present,
            self._manifest(tx),
        )
        return engine.verbs.vote_write(
            node,
            intent.table_id,
            intent.slot,
            intent.new_version,
            intent.new_value,
            intent.new_present,
            shadow,
            value_size=value_size,
        )

    @staticmethod
    def _manifest(tx) -> Tuple[Tuple[int, int, int], ...]:
        """(table_id, slot, new_version) for every applied address."""
        return tuple(
            (intent.table_id, intent.slot, intent.new_version)
            for intent in tx.write_set.values()
            if intent.locked
            and (intent.new_value is not None or intent.kind == OP_DELETE)
        )
