"""LOTUS-style ticket-queue locking (protocol zoo member).

LOTUS (Scalable and Fast Lock Management in Disaggregated Memory)
moves lock fairness onto the lock server: acquisition is one FAA that
takes a *ticket*, and the server grants the lock in ticket order. On a
disaggregated store this trades FORD/Pandora's abort-on-conflict for
bounded queueing — under hot-key contention the abort rate collapses
because conflicting writers wait their turn instead of retrying the
whole transaction.

The zoo adaptation keeps PILL's recoverability:

* The ticket word (see :mod:`repro.protocol.locks`) embeds the current
  *holder's* coordinator id in the same bits as a PILL word, so the
  sanitizer, the failed-ids check, and log recovery attribute ticket
  locks exactly like PILL locks.
* A dead **holder** is skipped client-side: any waiter observing a
  failed holder posts a CAS conditioned on the full observed word; the
  lock server executes it as a queue advance — the queue-aware
  analogue of a PILL steal.
* A dead **waiter** is skipped server-side: queue advances consult the
  failed-ids bitset (pushed to lock servers by Cor4 exactly as it is
  pushed to compute nodes) and drop tickets whose owner died while
  queued.
* A fully drained queue stores word 0, so recovery's conditional
  CAS-to-0 release and the litmus invariant "all locks free" work
  unchanged; ``recovery_mode`` is "pill".

Undo logging and commit are Pandora's (coalesced f+1 records, logged
commit): only the lock axis differs.
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.base import ProtocolEngine
from repro.protocol.strategies import (
    CoalescedLogStrategy,
    LoggedCommitStrategy,
    TicketLockStrategy,
)
from repro.protocol.types import BugFlags

__all__ = ["LotusProtocol"]


class LotusProtocol(ProtocolEngine):
    """LOTUS: FAA ticket-queue locks + coalesced post-lock logging."""

    name = "lotus"
    lock_strategy = TicketLockStrategy
    log_strategy = CoalescedLogStrategy
    commit_strategy = LoggedCommitStrategy

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


def lotus_factory(bugs: Optional[BugFlags] = None):
    """Engine factory for :class:`~repro.protocol.coordinator.Coordinator`."""

    def factory(coordinator):
        return LotusProtocol(coordinator, bugs=bugs)

    return factory
