"""Shared protocol types: abort reasons, outcomes, intents, bug flags."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

__all__ = [
    "AbortReason",
    "TxnAbort",
    "TxnOutcome",
    "ReadEntry",
    "WriteIntent",
    "BugFlags",
    "OP_UPDATE",
    "OP_INSERT",
    "OP_DELETE",
]

OP_UPDATE = "update"
OP_INSERT = "insert"
OP_DELETE = "delete"


class AbortReason:
    """Why a transaction aborted (string constants, compared by identity)."""

    LOCK_CONFLICT = "lock_conflict"
    READ_LOCKED = "read_locked"
    VALIDATION_VERSION = "validation_version"
    VALIDATION_LOCKED = "validation_locked"
    UPGRADE_VERSION = "upgrade_version"
    DUPLICATE_KEY = "duplicate_key"
    NOT_FOUND = "not_found"
    USER = "user_abort"
    MEMORY_RECONFIG = "memory_reconfiguration"
    LINK_REVOKED = "link_revoked"
    APP_ERROR = "app_error"


class TxnAbort(Exception):
    """Internal control-flow exception ending a transaction attempt."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


@dataclass
class TxnOutcome:
    """Result of one transaction (possibly after several attempts)."""

    committed: bool
    reason: Optional[str] = None
    value: Any = None
    attempts: int = 1
    start_time: float = 0.0
    end_time: float = 0.0
    txn_id: int = -1

    @property
    def latency(self) -> float:
        """Client-observed latency of the (last) attempt."""
        return self.end_time - self.start_time


@dataclass
class ReadEntry:
    """A read-set member: the snapshot the transaction observed."""

    table_id: int
    key: Hashable
    slot: int
    version: int
    present: bool
    value: Any
    node: int


@dataclass
class WriteIntent:
    """A write-set member and everything needed to log/commit/undo it."""

    table_id: int
    key: Hashable
    slot: int
    kind: str  # OP_UPDATE / OP_INSERT / OP_DELETE
    new_value: Any = None
    # Populated at lock time:
    locked: bool = False
    lock_node: Optional[int] = None
    old_version: int = -1
    old_value: Any = None
    old_present: bool = False
    # For read-then-write upgrades: the version the earlier read saw.
    expected_version: Optional[int] = None
    # Replicas this intent's commit-phase updates were posted to.
    applied: bool = False
    # The lock-acquisition subprocess (set while in flight).
    lock_result: Optional[Tuple[bool, str]] = None

    @property
    def new_version(self) -> int:
        """Version this intent installs on commit (old + 1)."""
        return self.old_version + 1

    @property
    def new_present(self) -> bool:
        """Presence after commit (False only for deletes)."""
        return self.kind != OP_DELETE

    def log_entry(self) -> Tuple:
        """Entry tuple stored in undo-log records (see LogRecord docs)."""
        return (
            self.table_id,
            self.slot,
            self.key,
            self.old_version,
            self.new_version,
            self.old_value,
            self.new_value,
            self.old_present,
            self.new_present,
        )


@dataclass
class BugFlags:
    """The six FORD bugs from Table 1, individually toggleable.

    ``published()`` returns FORD as shipped (all bugs present);
    ``fixed()`` returns the fully repaired behaviour used by Pandora.
    """

    complicit_abort: bool = False  # C1: abort path unlocks never-acquired locks
    missing_insert_log: bool = False  # C2: inserts are not undo-logged
    covert_locks: bool = False  # C1: validation ignores the lock bit
    relaxed_locks: bool = False  # C1: validation may start before all locks land
    lost_decision: bool = False  # C2: logs written for txns that later abort
    log_without_lock: bool = False  # C2: log posted before the lock is grabbed

    @classmethod
    def published(cls) -> "BugFlags":
        """FORD exactly as shipped: all six bugs present."""
        return cls(
            complicit_abort=True,
            missing_insert_log=True,
            covert_locks=True,
            relaxed_locks=True,
            lost_decision=True,
            log_without_lock=True,
        )

    @classmethod
    def fixed(cls) -> "BugFlags":
        """All Table 1 bugs repaired (the Pandora default)."""
        return cls()

    def any_enabled(self) -> bool:
        """True if at least one bug flag is on."""
        return any(
            (
                self.complicit_abort,
                self.missing_insert_log,
                self.covert_locks,
                self.relaxed_locks,
                self.lost_decision,
                self.log_without_lock,
            )
        )
