"""Frozen pre-strategy-refactor engine — the parity reference.

This is the flag-based transaction engine exactly as it stood before
lock acquisition / undo logging / commit were factored into pluggable
strategy objects (``repro.protocol.strategies``). It exists for one
purpose: `tests/integration/test_strategy_parity.py` runs pandora /
ford / tradlog through BOTH engines and asserts bit-identical cluster
fingerprints, processed-event counts, and verb totals — the same
pinning discipline `ClusterConfig.legacy_kernel` provides for the
scheduler rewrite. Select it with ``ClusterConfig.legacy_engine``.

Deliberately carries the same two lock-word bugfixes as the refactored
engine (steal-CAS retry against another dead owner; the 0xFFFF
coordinator-id cap lives in ``repro.protocol.locks``), so the parity
diff isolates the *refactor*, not the bugfixes.

Do not add features here; it is a snapshot, not a second engine.

FORD, Pandora, and the "traditional logging" variant all run the same
optimistic skeleton (§2.3): eager-lock the write-set during execution,
validate the read-set, then commit or abort. The variants differ in

* the **lock word** (anonymous vs PILL owner-id encoding),
* what happens on a **lock conflict** (abort vs consult failed-ids and
  steal, §3.1.2),
* the **undo-logging** strategy (per-object-to-object-replicas vs a
  single coalesced record to f+1 fixed log servers, §3.1.4; the
  traditional variant adds a pre-lock log round trip), and
* the six **bug flags** of Table 1, which reproduce the published FORD
  behaviour for the litmus framework.

Application logic is a generator function ``logic(tx)`` that drives a
:class:`Txn` handle (`yield from tx.read(...)`, ``tx.write(...)``); the
engine executes it inside the protocol, exactly as the DKVS
compute-side library runs application requests (§2.1).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Hashable, List, Optional, Tuple

from repro.memory.node import LogRecord
from repro.obs import NULL_TXN_TRACE
from repro.protocol.locks import (
    ANONYMOUS_OWNER,
    encode_anonymous_lock,
    encode_lock,
    is_locked,
    owner_of,
)
from repro.protocol.types import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    AbortReason,
    BugFlags,
    ReadEntry,
    TxnAbort,
    TxnOutcome,
    WriteIntent,
)
from repro.rdma.errors import LinkRevokedError, RdmaError
from repro.sim import Event

__all__ = [
    "LegacyTxn",
    "LegacyProtocolEngine",
    "LegacyPandoraProtocol",
    "LegacyFordProtocol",
    "LegacyTradLogProtocol",
    "legacy_factory",
]

# Bound on steal-CAS retries when the word keeps resolving to yet
# another dead owner (stray-to-stray races during mass failover).
STEAL_RETRY_LIMIT = 4


class LegacyTxn:
    """Per-attempt transaction context handed to application logic."""

    __slots__ = (
        "engine",
        "txn_id",
        "read_set",
        "write_set",
        "lock_procs",
        "log_acks",
        "logged_records",
        "result",
        "start_time",
        "apply_done",
        "trace",
    )

    def __init__(self, engine: "LegacyProtocolEngine", txn_id: int) -> None:
        self.engine = engine
        self.txn_id = txn_id
        self.read_set: Dict[Tuple[int, int], ReadEntry] = {}
        self.write_set: Dict[Tuple[int, int], WriteIntent] = {}
        self.lock_procs: List[Event] = []
        self.log_acks: List[Event] = []
        # (memory node id, record id) pairs of coalesced log copies.
        self.logged_records: List[Tuple[int, int]] = []
        self.result: Any = None
        self.start_time = engine.sim.now
        # True once the commit phase applied updates to every replica.
        self.apply_done = False
        # Obs handle for this attempt; lock subprocesses use it to
        # attribute their verbs (run_attempt swaps in the real one).
        self.trace = NULL_TXN_TRACE

    # -- application-facing operations (BeginTx is implicit) ---------------

    def read(self, table: str, key: Hashable) -> Generator[Event, Any, Any]:
        """Read one object; returns its value or None if absent."""
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        slot = engine.catalog.slot_for(table_id, key)
        address = (table_id, slot)
        intent = self.write_set.get(address)
        if intent is not None:
            # Read-your-writes from the local buffer.
            if intent.new_value is not None or intent.kind == OP_DELETE:
                return None if intent.kind == OP_DELETE else intent.new_value
            return intent.old_value
        cached = self.read_set.get(address)
        if cached is not None:
            return cached.value if cached.present else None
        entry = yield from engine._execute_read(self, table_id, key, slot)
        return entry.value if entry.present else None

    def read_many(
        self, table: str, keys: List[Hashable]
    ) -> Generator[Event, Any, List[Any]]:
        """Batched read of several keys in one round trip.

        Reads not served from the local buffers are posted together
        (doorbell batching), so the whole batch costs one round trip
        per involved memory node instead of one per key.
        """
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        values: List[Any] = [None] * len(keys)
        to_fetch = []
        for index, key in enumerate(keys):
            slot = engine.catalog.slot_for(table_id, key)
            address = (table_id, slot)
            intent = self.write_set.get(address)
            if intent is not None:
                if intent.kind == OP_DELETE:
                    values[index] = None
                elif intent.new_value is not None:
                    values[index] = intent.new_value
                else:
                    values[index] = intent.old_value
                continue
            cached = self.read_set.get(address)
            if cached is not None:
                values[index] = cached.value if cached.present else None
                continue
            to_fetch.append((index, key, slot))
        if to_fetch:
            fetched = yield from engine._execute_read_batch(
                self, table_id, to_fetch
            )
            for index, value in fetched:
                values[index] = value
        return values

    def read_range(
        self, table: str, start_key: int, count: int
    ) -> Generator[Event, Any, List[Any]]:
        """ReadRange (§2.1): batched read of *count* consecutive keys."""
        if count < 1:
            raise ValueError("count must be >= 1")
        keys = [start_key + offset for offset in range(count)]
        values = yield from self.read_many(table, keys)
        return values

    def read_for_update(self, table: str, key: Hashable) -> Generator[Event, Any, Any]:
        """Lock-and-read: eagerly acquires the write lock, returns value."""
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        slot = engine.catalog.slot_for(table_id, key)
        address = (table_id, slot)
        intent = self.write_set.get(address)
        if intent is None:
            intent = self._new_intent(table_id, key, slot, OP_UPDATE)
        proc = self._lock_proc_for(intent)
        if not proc.triggered:
            yield proc
        success, reason = intent.lock_result
        if not success:
            raise TxnAbort(reason, f"{table}[{key!r}]")
        return intent.old_value if intent.old_present else None

    def write(self, table: str, key: Hashable, value: Any) -> None:
        """Buffer an update; the lock is acquired eagerly in the background.

        Returns immediately — FORD pipelines blind-write locks with the
        rest of execution; the engine waits for all lock completions at
        the execution barrier (unless the relaxed-locks bug is on).
        """
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        slot = engine.catalog.slot_for(table_id, key)
        intent = self.write_set.get((table_id, slot))
        if intent is None:
            cached = self.read_set.get((table_id, slot))
            intent = self._new_intent(
                table_id,
                key,
                slot,
                OP_UPDATE,
                expected_version=cached.version if cached is not None else None,
            )
        elif intent.kind == OP_DELETE:
            # Write-after-delete within one transaction resurrects the
            # object (net effect: an update).
            intent.kind = OP_UPDATE
        intent.new_value = value

    def insert(self, table: str, key: Hashable, value: Any) -> None:
        """Buffer an insert; aborts at lock time if the key exists."""
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        slot = engine.catalog.slot_for(table_id, key)
        existing = self.write_set.get((table_id, slot))
        if existing is not None:
            if existing.kind == OP_DELETE:
                # Delete-then-insert in one transaction nets out to an
                # update with the new value.
                existing.kind = OP_UPDATE
                existing.new_value = value
                return
            raise TxnAbort(AbortReason.DUPLICATE_KEY, f"{table}[{key!r}]")
        intent = self._new_intent(table_id, key, slot, OP_INSERT)
        intent.new_value = value

    def delete(self, table: str, key: Hashable) -> None:
        """Buffer a delete; aborts at lock time if the key is absent."""
        engine = self.engine
        table_id = engine.catalog.table(table).table_id
        slot = engine.catalog.slot_for(table_id, key)
        existing = self.write_set.get((table_id, slot))
        if existing is not None:
            existing.kind = OP_DELETE
            existing.new_value = None
            return
        cached = self.read_set.get((table_id, slot))
        self._new_intent(
            table_id,
            key,
            slot,
            OP_DELETE,
            expected_version=cached.version if cached is not None else None,
        )

    def abort(self, detail: str = "") -> None:
        """Application-requested abort."""
        raise TxnAbort(AbortReason.USER, detail)

    # -- internals ----------------------------------------------------------

    def _new_intent(
        self,
        table_id: int,
        key: Hashable,
        slot: int,
        kind: str,
        expected_version: Optional[int] = None,
    ) -> WriteIntent:
        intent = WriteIntent(
            table_id=table_id,
            key=key,
            slot=slot,
            kind=kind,
            expected_version=expected_version,
        )
        self.write_set[(table_id, slot)] = intent
        proc = self.engine.sim.process(
            self.engine._acquire(self, intent), name=f"lock-{table_id}:{slot}"
        )
        intent_proc_index = len(self.lock_procs)
        self.lock_procs.append(proc)
        # Remember which proc belongs to this intent for read_for_update.
        intent._proc_index = intent_proc_index  # type: ignore[attr-defined]
        return intent

    def _lock_proc_for(self, intent: WriteIntent) -> Event:
        return self.lock_procs[intent._proc_index]  # type: ignore[attr-defined]


class LegacyProtocolEngine:
    """Shared OCC engine; variants set the class attributes below."""

    name = "base"
    # PILL: embed the coordinator id in lock words and allow stealing.
    pill_enabled = False
    # Pandora: one coalesced log record to the f+1 fixed log servers.
    coalesced_logging = False
    # FORD: one undo-log record per object to that object's replicas.
    per_object_logging = False
    # Traditional scheme: an extra lock-log round trip before each CAS.
    pre_lock_logging = False
    # FORD defers the read-then-write version re-check to validation
    # (it validates "all objects in its read-set", §2.3) — i.e. *after*
    # undo logs were written. Pandora enforces the check at lock time,
    # before anything is logged (lock-to-log order, §3.1.5).
    late_upgrade_check = False

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        self.coordinator = coordinator
        self.sim = coordinator.sim
        self.verbs = coordinator.verbs
        self.catalog = coordinator.catalog
        self.placement = coordinator.catalog.placement
        self.coord_id = coordinator.coord_id
        self.obs = coordinator.obs
        self.bugs = bugs if bugs is not None else BugFlags.fixed()
        self._lock_tag = 0
        # The attempt currently in flight (used by interrupt recovery).
        self.current_tx: Optional[LegacyTxn] = None
        # §7 persistence: chase commit writes with a small read per
        # touched node to flush the RNIC cache into NVM before acking.
        self.nvm_flush = getattr(coordinator.config, "nvm_flush", False)
        # FORD-style compute-side address cache: when cold, the first
        # access to an object traverses the memory-side hash index (an
        # extra one-sided read); afterwards the exact address is known.
        self._warm_addresses = getattr(coordinator.config, "warm_address_cache", True)
        self._address_cache: set = set()

    # -- variant hooks -------------------------------------------------------

    def _lock_word(self) -> int:
        self._lock_tag = (self._lock_tag + 1) & 0xFFFFFFFF
        if self.pill_enabled:
            return encode_lock(self.coord_id, self._lock_tag)
        return encode_anonymous_lock(self._lock_tag)

    def _is_stray(self, word: int) -> bool:
        """PILL check: is this lock owned by a recovered-failed coordinator?"""
        if not self.pill_enabled or not is_locked(word):
            return False
        owner = owner_of(word)
        if owner == ANONYMOUS_OWNER:
            return False
        return owner in self.coordinator.node.failed_ids

    # -- fault hooks -----------------------------------------------------------

    def _cp(self, name: str) -> Optional[Event]:
        """Crash point: the injector may kill this compute node here."""
        faults = self.coordinator.faults
        if faults is None:
            return None
        return faults.crash_point(name, self.coordinator)

    # -- top-level attempt -------------------------------------------------------

    def run_attempt(
        self, logic, txn_id: int, attempt: int = 1
    ) -> Generator[Event, Any, TxnOutcome]:
        """Execute one attempt of *logic*; returns a TxnOutcome."""
        tx = LegacyTxn(self, txn_id)
        self.current_tx = tx
        trace = self.obs.txn_begin(
            self.name,
            self.coordinator.node.node_id,
            self.coord_id,
            txn_id,
            tx.start_time,
            attempt,
        )
        tx.trace = trace
        try:
            generated = logic(tx)
            if hasattr(generated, "__next__"):
                tx.result = yield from generated
            else:
                tx.result = generated
            checkpoint = self._cp("execution_done")
            if checkpoint is not None:
                yield checkpoint
            trace.phase("execute", self.sim.now)

            if self.bugs.relaxed_locks:
                # BUG (Table 1, "Relaxed Locks"): validation reads are
                # posted before the write-set locks are known to be
                # held, so validation can race ahead of locking.
                validation_groups = self._post_validation_reads(tx)
                yield from self._lock_barrier(tx)
                trace.phase("lock", self.sim.now)
                self._post_coalesced_log(tx)
            else:
                yield from self._lock_barrier(tx)
                trace.phase("lock", self.sim.now)
                checkpoint = self._cp("locks_held")
                if checkpoint is not None:
                    yield checkpoint
                self._post_coalesced_log(tx)
                validation_groups = self._post_validation_reads(tx)
            checkpoint = self._cp("log_posted")
            if checkpoint is not None:
                yield checkpoint

            yield from self._check_validation(tx, validation_groups)
            if self.late_upgrade_check:
                self._check_upgrades(tx)
            trace.phase("validate", self.sim.now)

            # Decision point: the write-set must be durably logged
            # before any in-place update (§3.1.5 "(2) ... ensures the
            # write-set is logged").
            if tx.log_acks:
                yield self.sim.all_of(tx.log_acks)
            trace.phase("log", self.sim.now)
            checkpoint = self._cp("decision")
            if checkpoint is not None:
                yield checkpoint

            yield from self._commit(tx, trace)
            trace.end("commit", self.sim.now, writes=len(tx.write_set))
            return TxnOutcome(
                committed=True,
                value=tx.result,
                txn_id=txn_id,
                start_time=tx.start_time,
                end_time=self.sim.now,
            )
        except TxnAbort as abort:
            yield from self._abort(tx, abort.reason)
            trace.phase("abort", self.sim.now)
            trace.end(f"abort:{abort.reason}", self.sim.now, writes=len(tx.write_set))
            return TxnOutcome(
                committed=False,
                reason=abort.reason,
                txn_id=txn_id,
                start_time=tx.start_time,
                end_time=self.sim.now,
            )
        except LinkRevokedError:
            # We were fenced by active-link termination (Cor1); the
            # coordinator-level handler decides what to do next. Held
            # locks are deliberately NOT released here: fencing marks
            # this coordinator dead, which makes its locks stealable,
            # and the RecoveryManager's compute-failure path owns
            # releasing or repairing them (§3.2.2).
            trace.end("fenced", self.sim.now, writes=len(tx.write_set))
            # protolint: disable=PROTO001 -- fenced: RecoveryManager owns the locks
            raise
        except RdmaError:
            # A replica went down mid-attempt; apply the compute-side
            # decision rule of §3.2.5.
            outcome = yield from self.recover_interrupted(tx)
            trace.end("interrupted", self.sim.now, writes=len(tx.write_set))
            return outcome
        except Exception:
            # Application logic raised something the protocol does not
            # model (a bug in the transaction body). The write-set may
            # hold eagerly-acquired locks under a *live* coordinator id
            # — unstealable by PILL — so run the abort path to release
            # them before the error escapes to the worker loop's
            # crash-stop conversion. Found by protolint (PROTO001).
            yield from self._abort(tx, AbortReason.APP_ERROR)
            trace.end(
                f"abort:{AbortReason.APP_ERROR}",
                self.sim.now,
                writes=len(tx.write_set),
            )
            raise
        finally:
            self.current_tx = None

    # -- execution phase -----------------------------------------------------------

    def _resolve_address(
        self, table_id: int, slot: int, node: int
    ) -> Generator[Event, Any, None]:
        """Hash-index probe for a not-yet-cached object address."""
        if self._warm_addresses or (table_id, slot) in self._address_cache:
            return
        # One bucket read resolves the exact object address.
        yield self.verbs.read_header(node, table_id, slot)
        self._address_cache.add((table_id, slot))

    def _execute_read(
        self, tx: LegacyTxn, table_id: int, key: Hashable, slot: int
    ) -> Generator[Event, Any, ReadEntry]:
        primary = self.placement.primary(table_id, slot)
        tx.trace.focus("execute")
        yield from self._resolve_address(table_id, slot, primary)
        tx.trace.focus()
        lock, version, present, value = yield self.verbs.read_object(
            primary, table_id, slot
        )
        if is_locked(lock) and not self._is_stray(lock):
            # The execution phase fails if an accessed object is
            # already locked (§2.3); PILL lets reads pass stray locks.
            tx.trace.lock_event("read_locked", table_id, slot, self.sim.now)
            raise TxnAbort(AbortReason.READ_LOCKED, f"table {table_id} slot {slot}")
        entry = ReadEntry(
            table_id=table_id,
            key=key,
            slot=slot,
            version=version,
            present=present,
            value=value,
            node=primary,
        )
        tx.read_set[(table_id, slot)] = entry
        return entry

    def _execute_read_batch(
        self, tx: LegacyTxn, table_id: int, to_fetch
    ) -> Generator[Event, Any, List]:
        """Post many reads together; one round trip per memory node."""
        tx.trace.focus("execute")
        posted = []
        for index, key, slot in to_fetch:
            primary = self.placement.primary(table_id, slot)
            posted.append(
                (index, key, slot, primary, self.verbs.read_object(primary, table_id, slot))
            )
        results = []
        for index, key, slot, primary, event in posted:
            lock, version, present, value = yield event
            if is_locked(lock) and not self._is_stray(lock):
                tx.trace.lock_event("read_locked", table_id, slot, self.sim.now)
                raise TxnAbort(
                    AbortReason.READ_LOCKED, f"table {table_id} slot {slot}"
                )
            tx.read_set[(table_id, slot)] = ReadEntry(
                table_id=table_id,
                key=key,
                slot=slot,
                version=version,
                present=present,
                value=value,
                node=primary,
            )
            results.append((index, value if present else None))
        return results

    def _acquire(self, tx: LegacyTxn, intent: WriteIntent) -> Generator[Event, Any, None]:
        """Lock + read one write-set object (runs as a subprocess).

        Never raises: the outcome lands in ``intent.lock_result`` and
        the execution barrier converts failures into aborts.
        """
        try:
            yield from self._acquire_inner(tx, intent)
        except RdmaError as error:
            intent.lock_result = (False, AbortReason.LINK_REVOKED)
            intent.lock_error = error  # type: ignore[attr-defined]

    def _acquire_inner(self, tx: LegacyTxn, intent: WriteIntent) -> Generator[Event, Any, None]:
        table_id, slot = intent.table_id, intent.slot
        primary = self.placement.primary(table_id, slot)
        tx.trace.focus("lock")
        yield from self._resolve_address(table_id, slot, primary)
        desired = self._lock_word()

        if self.pre_lock_logging:
            # Traditional scheme: record lock ownership *before* taking
            # the lock, costing one full extra round trip (§6.1).
            tx.trace.focus("log")
            yield from self._write_lock_log(intent, desired)

        posted_speculatively = False
        if (
            self.per_object_logging
            and self.bugs.log_without_lock
            and intent.expected_version is not None
        ):
            # BUG (Table 1, "Logging without locking"): in a corner
            # case FORD posts the undo log — built from the earlier
            # read's image — before the CAS outcome is known.
            self._post_object_log(tx, intent, speculative=True)
            posted_speculatively = True

        tx.trace.focus("lock")
        cas_event = self.verbs.cas_lock(primary, table_id, slot, 0, desired)
        read_event = self.verbs.read_object(primary, table_id, slot)
        checkpoint = self._cp("lock_posted")
        if checkpoint is not None:
            yield checkpoint
        old_word = yield cas_event
        lock, version, present, value = yield read_event

        if old_word != 0:
            if self._is_stray(old_word):
                # PILL steal: the owner is a recovered-failed
                # coordinator; a second CAS takes the lock over (§3.1.2).
                tx.trace.lock_event("steal", table_id, slot, self.sim.now)
                tx.trace.focus("lock")
                second = yield self.verbs.cas_lock(
                    primary, table_id, slot, old_word, desired
                )
                retries = 0
                while (
                    second != old_word
                    and self._is_stray(second)
                    and retries < STEAL_RETRY_LIMIT
                ):
                    # Stray-to-stray race (mass failover): the word we
                    # lost to belongs to *another* dead coordinator —
                    # aborting here would leave the lock stranded until
                    # some later txn retries the whole attempt. Retry
                    # the steal against the new stray word instead.
                    retries += 1
                    self.coordinator.stats.steal_retries += 1
                    tx.trace.lock_event("steal_retry", table_id, slot, self.sim.now)
                    tx.trace.focus("lock")
                    old_word = second
                    second = yield self.verbs.cas_lock(
                        primary, table_id, slot, old_word, desired
                    )
                if second != old_word:
                    tx.trace.lock_event("steal_lost", table_id, slot, self.sim.now)
                    intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                    return
                self.coordinator.stats.locks_stolen += 1
                tx.trace.focus("lock")
                lock, version, present, value = yield self.verbs.read_object(
                    primary, table_id, slot
                )
            else:
                tx.trace.lock_event("conflict", table_id, slot, self.sim.now)
                intent.lock_result = (False, AbortReason.LOCK_CONFLICT)
                return

        intent.locked = True
        intent.lock_node = primary
        intent.old_version = version
        intent.old_value = value
        intent.old_present = present
        tx.trace.lock_event("acquired", table_id, slot, self.sim.now)
        checkpoint = self._cp("locked")
        if checkpoint is not None:
            yield checkpoint

        if (
            intent.expected_version is not None
            and version != intent.expected_version
            and not self.late_upgrade_check
        ):
            # Read-then-write upgrade raced with another writer. FORD
            # defers this abort to validation (after logging).
            intent.lock_result = (False, AbortReason.UPGRADE_VERSION)
            return
        if intent.kind == OP_INSERT and present:
            intent.lock_result = (False, AbortReason.DUPLICATE_KEY)
            return
        if intent.kind == OP_DELETE and not present:
            intent.lock_result = (False, AbortReason.NOT_FOUND)
            return

        if self.per_object_logging and not posted_speculatively:
            if not (self.bugs.missing_insert_log and intent.kind == OP_INSERT):
                self._post_object_log(tx, intent)
        intent.lock_result = (True, "")

    def _lock_barrier(self, tx: LegacyTxn) -> Generator[Event, Any, None]:
        """Wait for every lock subprocess; abort on any failure."""
        if tx.lock_procs:
            pending = [proc for proc in tx.lock_procs if not proc.triggered]
            if pending:
                yield self.sim.all_of(pending)
        for intent in tx.write_set.values():
            if intent.lock_result is None:
                raise AssertionError("lock subprocess finished without a result")
            success, reason = intent.lock_result
            if not success:
                raise TxnAbort(reason, f"table {intent.table_id} slot {intent.slot}")

    # -- logging ---------------------------------------------------------------------

    def _log_value_size(self, table_id: int) -> int:
        return self.catalog.tables[table_id].value_size

    def _post_object_log(
        self, tx: LegacyTxn, intent: WriteIntent, speculative: bool = False
    ) -> None:
        """FORD-style: undo-log one object to each of its replicas.

        A *speculative* log (the "logging without locking" bug) is
        posted before the CAS outcome is known, so its undo image
        comes from the transaction's earlier read of the object.
        """
        tx.trace.focus("log")
        if speculative:
            cached = tx.read_set.get((intent.table_id, intent.slot))
            if cached is None:
                return
            entry = (
                intent.table_id,
                intent.slot,
                intent.key,
                cached.version,
                cached.version + 1,
                cached.value,
                intent.new_value,
                cached.present,
                intent.new_present,
            )
        else:
            entry = intent.log_entry()
        record_template_entries = (entry,)
        for node in self.placement.replicas(intent.table_id, intent.slot):
            record = LogRecord(
                coord_id=self.coord_id,
                txn_id=tx.txn_id,
                entries=record_template_entries,
            )
            size = record.size_bytes({intent.table_id: self._log_value_size(intent.table_id)})
            ack = self.verbs.write_log(node, record, size)
            tx.log_acks.append(ack)
            self._remember_log_copy(tx, node, ack)

    def _write_lock_log(
        self, intent: WriteIntent, lock_word: int
    ) -> Generator[Event, Any, None]:
        """Traditional scheme's pre-lock ownership log (blocking RTT).

        The record stores the exact lock word about to be CAS'd in, so
        recovery can release the lock iff it is still the one we took
        (a CAS conditioned on the logged word).
        """
        events = []
        nodes = self.catalog.log_nodes(self.coord_id)
        for node in nodes:
            record = LogRecord(
                coord_id=self.coord_id,
                txn_id=-1,  # lock-intent record, not a txn undo record
                entries=((intent.table_id, intent.slot, intent.key, lock_word),),
            )
            events.append(self.verbs.write_log(node, record, 64))
        results = yield self.sim.all_of(events)
        intent._locklog_copies = list(zip(nodes, results))  # type: ignore[attr-defined]

    def _release_lock_logs(self, intent: WriteIntent) -> None:
        """Invalidate lock-intent records once the lock is released."""
        for node, record_id in getattr(intent, "_locklog_copies", ()):
            self.verbs.invalidate_log(node, self.coord_id, record_id, signaled=False)

    def _post_coalesced_log(self, tx: LegacyTxn) -> None:
        """Pandora: one record covering the whole write-set, to the f+1
        fixed log servers (§3.1.4). Posted after all locks are held
        (lock-to-log order); the decision point waits for the acks."""
        if not self.coalesced_logging or not tx.write_set:
            return
        tx.trace.focus("log")
        entries = tuple(
            intent.log_entry()
            for intent in tx.write_set.values()
            if intent.locked
        )
        if not entries:
            return
        value_sizes = {
            spec.table_id: spec.value_size for spec in self.catalog.tables.values()
        }
        for node in self.catalog.log_nodes(self.coord_id):
            record = LogRecord(
                coord_id=self.coord_id, txn_id=tx.txn_id, entries=entries
            )
            size = record.size_bytes(value_sizes)
            ack = self.verbs.write_log(node, record, size)
            tx.log_acks.append(ack)
            self._remember_log_copy(tx, node, ack)

    def _remember_log_copy(self, tx: LegacyTxn, node: int, ack: Event) -> None:
        def on_ack(event: Event) -> None:
            if event._exception is None:
                tx.logged_records.append((node, event._value))

        ack.add_callback(on_ack)

    # -- validation --------------------------------------------------------------------

    def _post_validation_reads(self, tx: LegacyTxn):
        """Batch per-node header reads for read-set members not written."""
        to_validate = [
            entry
            for address, entry in tx.read_set.items()
            if address not in tx.write_set
        ]
        if not to_validate or (len(to_validate) == 1 and not tx.write_set):
            # A lone read with no writes is trivially serializable at
            # its read point; skip the validation round trip.
            return []
        groups: Dict[int, List[ReadEntry]] = {}
        for entry in to_validate:
            node = self.placement.primary(entry.table_id, entry.slot)
            groups.setdefault(node, []).append(entry)
        tx.trace.focus("validate")
        posted = []
        for node, entries in groups.items():
            addresses = [(entry.table_id, entry.slot) for entry in entries]
            posted.append((entries, self.verbs.read_headers(node, addresses)))
        return posted

    def _check_validation(self, tx: LegacyTxn, groups) -> Generator[Event, Any, None]:
        for entries, event in groups:
            headers = yield event
            for entry, (lock, version, _present) in zip(entries, headers):
                if version != entry.version:
                    raise TxnAbort(
                        AbortReason.VALIDATION_VERSION,
                        f"table {entry.table_id} slot {entry.slot}",
                    )
                if self.bugs.covert_locks:
                    # BUG (Table 1, "Covert Locks"): only versions are
                    # compared; a concurrently locked object slips by.
                    continue
                if is_locked(lock) and not self._is_stray(lock):
                    raise TxnAbort(
                        AbortReason.VALIDATION_LOCKED,
                        f"table {entry.table_id} slot {entry.slot}",
                    )

    def _check_upgrades(self, tx: LegacyTxn) -> None:
        """FORD's deferred read-then-write version re-check.

        Purely local: compares the version captured at lock time with
        the one the earlier read observed. Crucially this runs *after*
        the undo logs were posted — the ordering that makes FORD's
        "lost decision" bug possible (§3.1.3).
        """
        for intent in tx.write_set.values():
            if (
                intent.locked
                and intent.expected_version is not None
                and intent.old_version != intent.expected_version
            ):
                raise TxnAbort(
                    AbortReason.UPGRADE_VERSION,
                    f"table {intent.table_id} slot {intent.slot}",
                )

    # -- commit / abort ------------------------------------------------------------------

    def _commit(self, tx: LegacyTxn, trace=NULL_TXN_TRACE) -> Generator[Event, Any, None]:
        apply_events: List[Event] = []
        touched: Dict[int, Tuple[int, int]] = {}
        for intent in tx.write_set.values():
            trace.focus("commit")
            if not intent.locked:
                continue
            has_change = intent.new_value is not None or intent.kind == OP_DELETE
            if has_change:
                value_size = self._log_value_size(intent.table_id)
                for node in self.placement.live_replicas(intent.table_id, intent.slot):
                    apply_events.append(
                        self.verbs.write_object(
                            node,
                            intent.table_id,
                            intent.slot,
                            intent.new_version,
                            intent.new_value,
                            intent.new_present,
                            value_size=value_size,
                        )
                    )
                    touched[node] = (intent.table_id, intent.slot)
                intent.applied = True
            checkpoint = self._cp("commit_posted")
            if checkpoint is not None:
                yield checkpoint
        if apply_events:
            yield self.sim.all_of(apply_events)
        if self.nvm_flush and touched:
            # FORD's selective flush (§7): one small read per touched
            # node, posted behind the writes on the same QPs, forces
            # the RNIC cache into persistent memory before the ack.
            trace.focus("commit")
            flush_events = [
                self.verbs.read_header(node, table_id, slot)
                for node, (table_id, slot) in touched.items()
            ]
            yield self.sim.all_of(flush_events)
        tx.apply_done = True
        checkpoint = self._cp("applied")
        if checkpoint is not None:
            yield checkpoint
        trace.phase("commit", self.sim.now)

        # Client acknowledgment happens here — after all replicas are
        # updated, before unlocking (§2.3 step 1 vs 2).
        self.coordinator.on_commit_ack(tx)

        trace.focus("unlock")
        for intent in tx.write_set.values():
            if intent.locked:
                self.verbs.write_lock(intent.lock_node, intent.table_id, intent.slot, 0)
                self._release_lock_logs(intent)
                tx.trace.lock_event(
                    "released", intent.table_id, intent.slot, self.sim.now
                )
        checkpoint = self._cp("unlocked")
        if checkpoint is not None:
            yield checkpoint

        # Lazily invalidate the undo log copies (off the critical path).
        trace.focus("unlock")
        for node, record_id in tx.logged_records:
            self.verbs.invalidate_log(node, self.coord_id, record_id, signaled=False)
        trace.phase("unlock", self.sim.now)

    def _abort(self, tx: LegacyTxn, reason: str) -> Generator[Event, Any, None]:
        # Locks may still be in flight (e.g. the abort came from a read
        # during execution) — their CAS outcome decides what we must
        # release, so wait for them first.
        pending = [proc for proc in tx.lock_procs if not proc.triggered]
        if pending:
            yield self.sim.all_of(pending)
        for ack in tx.log_acks:
            # A log copy posted to a server that died in flight fails
            # with RdmaError; the abort must survive that — this runs
            # inside the TxnAbort handler, so an escaping RdmaError
            # would skip the unlocks below and leak every held lock
            # under a *live* coordinator id (unstealable by PILL).
            try:
                yield ack
            except RdmaError:
                continue

        if tx.logged_records and not self.bugs.lost_decision:
            # Pandora §3.1.5: the abort *decision* is logged by
            # truncating the records — strictly before unlocking, so
            # recovery can never confuse this txn with a committed one.
            # Per-event await for the same reason as the acks above: a
            # record on a dead log server is judged by the survivors,
            # and a stale valid record is harmless — recovery's
            # roll-back of a never-applied write-set is a no-op, and
            # truncation drops the record afterwards.
            tx.trace.focus("abort")
            events = [
                self.verbs.invalidate_log(node, self.coord_id, record_id)
                for node, record_id in tx.logged_records
            ]
            for event in events:
                try:
                    yield event
                except RdmaError:
                    continue

        tx.trace.focus("abort")
        for intent in tx.write_set.values():
            release = intent.locked
            if self.bugs.complicit_abort:
                # BUG (Table 1, "Complicit Aborts"): FORD releases every
                # write-set lock, including ones it never acquired —
                # potentially freeing a lock held by another txn.
                release = True
            if release:
                node = intent.lock_node
                if node is None:
                    node = self.placement.primary(intent.table_id, intent.slot)
                self.verbs.write_lock(node, intent.table_id, intent.slot, 0)
                self._release_lock_logs(intent)
                tx.trace.lock_event(
                    "released", intent.table_id, intent.slot, self.sim.now
                )
        checkpoint = self._cp("abort_unlocked")
        if checkpoint is not None:
            yield checkpoint
        self.coordinator.on_abort(tx, reason)

    # -- interrupted attempts (memory reconfiguration, §3.2.5) ---------------

    def recover_interrupted(self, tx: Optional[LegacyTxn]) -> Generator[Event, Any, TxnOutcome]:
        """Resolve an attempt cut short by a memory-failure interrupt.

        The compute server has complete knowledge of its in-flight
        transactions, so it applies the same criterion as log recovery:
        commit transactions that updated all live replicas, abort the
        rest (§3.2.5). Best-effort network errors are swallowed —
        replicas that vanished take their state with them.
        """
        if tx is None:
            tx = self.current_tx
        self.current_tx = None
        if tx is None:
            return TxnOutcome(
                committed=False,
                reason=AbortReason.MEMORY_RECONFIG,
                start_time=self.sim.now,
                end_time=self.sim.now,
            )
        # The compute server can crash *while* resolving an interrupted
        # attempt — the union of two failure windows the paper treats
        # separately (§3.2.2 x §3.2.5). These crash points let the
        # chaos campaign land a kill at each step of the resolution.
        checkpoint = self._cp("recover_interrupted")
        if checkpoint is not None:
            yield checkpoint
        pending = [proc for proc in tx.lock_procs if not proc.triggered]
        if pending:
            try:
                yield self.sim.all_of(pending)
            except RdmaError:
                pass
        # Drain in-flight log acks (they all resolve: a copy to a dead
        # node fails at arrival) so the release below can invalidate
        # every copy we learn about — otherwise a valid undo record
        # outlives the unlock and recovery could mistake the aborted
        # txn for an in-flight one (§3.1.5 discipline, §3.2.5 path).
        for ack in tx.log_acks:
            if ack.triggered:
                continue
            try:
                yield ack
            except RdmaError:
                pass
        checkpoint = self._cp("recover_drained")
        if checkpoint is not None:
            yield checkpoint

        if tx.apply_done:
            # All replica updates landed before the interrupt: commit.
            self.coordinator.on_commit_ack(tx)
            tx.trace.focus("recover")
            self._best_effort_release(tx)
            # Seal the flight record here: when the interrupt killed the
            # attempt generator, run_attempt's trace.end never runs.
            self.obs.flight.close(
                tx.trace.rec, "commit:interrupted", self.sim.now, len(tx.write_set)
            )
            return TxnOutcome(
                committed=True,
                value=tx.result,
                txn_id=tx.txn_id,
                start_time=tx.start_time,
                end_time=self.sim.now,
            )

        # Roll back: restore the undo image on any replica we updated.
        # Same ordering discipline as _commit: wait for the restore
        # writes to land before the locks are released, else a stale
        # undo image on one replica could race a successor's update.
        tx.trace.focus("recover")
        undo_acks = []
        for intent in tx.write_set.values():
            if intent.applied:
                value_size = self._log_value_size(intent.table_id)
                for node in self.placement.live_replicas(intent.table_id, intent.slot):
                    undo_acks.append(
                        self.verbs.write_object(
                            node,
                            intent.table_id,
                            intent.slot,
                            intent.old_version,
                            intent.old_value,
                            intent.old_present,
                            value_size=value_size,
                        )
                    )
        for ack in undo_acks:
            try:
                yield ack
            except RdmaError:
                pass
        checkpoint = self._cp("recover_undo_written")
        if checkpoint is not None:
            yield checkpoint
        tx.trace.focus("recover")
        self._best_effort_release(tx)
        self.coordinator.on_abort(tx, AbortReason.MEMORY_RECONFIG)
        self.obs.flight.close(
            tx.trace.rec,
            f"abort:{AbortReason.MEMORY_RECONFIG}",
            self.sim.now,
            len(tx.write_set),
        )
        return TxnOutcome(
            committed=False,
            reason=AbortReason.MEMORY_RECONFIG,
            txn_id=tx.txn_id,
            start_time=tx.start_time,
            end_time=self.sim.now,
        )

    def _best_effort_release(self, tx: LegacyTxn) -> None:
        """Drop log records, then unlock held locks, without waiting.

        Same order as :meth:`_abort`: the record invalidations are
        posted *before* the unlocks so the decision is never ambiguous
        to a concurrent recovery (§3.1.5) — even though here nothing
        waits for either.
        """
        for node, record_id in tx.logged_records:
            self.verbs.invalidate_log(node, self.coord_id, record_id, signaled=False)
        for intent in tx.write_set.values():
            if intent.locked:
                self.verbs.write_lock(intent.lock_node, intent.table_id, intent.slot, 0)
                self._release_lock_logs(intent)
                tx.trace.lock_event(
                    "released", intent.table_id, intent.slot, self.sim.now
                )


class LegacyPandoraProtocol(LegacyProtocolEngine):
    """Pandora on the frozen flag-based engine."""

    name = "pandora"
    pill_enabled = True
    coalesced_logging = True
    per_object_logging = False
    pre_lock_logging = False

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


class LegacyFordProtocol(LegacyProtocolEngine):
    """FORD on the frozen flag-based engine."""

    name = "ford"
    pill_enabled = False
    coalesced_logging = False
    per_object_logging = True
    pre_lock_logging = False
    late_upgrade_check = True

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(
            coordinator, bugs if bugs is not None else BugFlags.published()
        )


class LegacyTradLogProtocol(LegacyProtocolEngine):
    """Traditional logging on the frozen flag-based engine."""

    name = "tradlog"
    pill_enabled = False
    coalesced_logging = True
    per_object_logging = False
    pre_lock_logging = True
    late_upgrade_check = True

    def __init__(self, coordinator, bugs: Optional[BugFlags] = None) -> None:
        super().__init__(coordinator, bugs if bugs is not None else BugFlags.fixed())


_LEGACY_ENGINES = {
    "pandora": LegacyPandoraProtocol,
    "ford": LegacyFordProtocol,
    "tradlog": LegacyTradLogProtocol,
}


def legacy_factory(protocol: str, bugs: Optional[BugFlags] = None):
    """Engine factory selecting the frozen pre-refactor build.

    Only the three protocols that predate the strategy layer have a
    legacy build; lotus / vote1pc were born on the strategy engine and
    have no flag-based ancestor to pin against.
    """
    if protocol == "baseline":
        # FORD online component with the bugs fixed (§4.1 comparison).
        engine_cls = LegacyFordProtocol
        bugs = bugs if bugs is not None else BugFlags.fixed()
    else:
        engine_cls = _LEGACY_ENGINES.get(protocol)
    if engine_cls is None:
        raise ValueError(
            f"no legacy engine for protocol {protocol!r}; "
            f"choices: {sorted(_LEGACY_ENGINES)}"
        )

    def factory(coordinator):
        return engine_cls(coordinator, bugs=bugs)

    return factory
